package dbi

import "fmt"

// unionRanges combines two normalized hot-range lists. Effective hot
// ranges grow monotonically within a run as hot-headed blocks overrun
// the selection boundary (the engine promotes their extents), so two
// snapshots of the same run — or two shards of the same workload that
// discovered different overruns — union to the set of offsets counted
// exactly somewhere.
func unionRanges(a, b []Range) []Range {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	return NewSelection(append(append(make([]Range, 0, len(a)+len(b)), a...), b...)).Ranges()
}

// Merge combines several edge profiles of the same module: block counts,
// edge counters, and callee tables sum. Useful when instrumented runs are
// repeated to cover input-dependent paths before a single analysis pass.
func Merge(profiles ...*Profile) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("dbi: nothing to merge")
	}
	out := &Profile{
		Module:         profiles[0].Module,
		StackProfiling: profiles[0].StackProfiling,
		CalleeCounts:   make(map[uint64]uint64),
	}
	blocks := make(map[uint64]*Block)
	for _, p := range profiles {
		if p.Module != out.Module {
			return nil, fmt.Errorf("dbi: merge: module %q vs %q", p.Module, out.Module)
		}
		for _, b := range p.Blocks {
			acc := blocks[b.Start]
			if acc == nil {
				cp := *b
				cp.Targets = nil
				if b.Targets != nil {
					cp.Targets = make(map[uint64]uint64, len(b.Targets))
				}
				acc = &cp
				acc.Count = 0
				acc.Fallthrough = 0
				blocks[b.Start] = acc
				out.Blocks = append(out.Blocks, acc)
			}
			if acc.TermOff != b.TermOff || acc.Kind != b.Kind {
				return nil, fmt.Errorf("dbi: merge: block 0x%x shape differs between runs", b.Start)
			}
			acc.Count += b.Count
			acc.Fallthrough += b.Fallthrough
			for t, n := range b.Targets {
				acc.Targets[t] += n
			}
		}
		for site, n := range p.CalleeCounts {
			out.CalleeCounts[site] += n
		}
		out.BaseInstructions += p.BaseInstructions
		out.InstrEquivalents += p.InstrEquivalents
		if p.Tiered {
			out.Tiered = true
			out.HotRanges = unionRanges(out.HotRanges, p.HotRanges)
			out.ColdInstructions += p.ColdInstructions
		}
	}
	// Deterministic order.
	for i := 1; i < len(out.Blocks); i++ {
		for j := i; j > 0 && out.Blocks[j].Start < out.Blocks[j-1].Start; j-- {
			out.Blocks[j], out.Blocks[j-1] = out.Blocks[j-1], out.Blocks[j]
		}
	}
	return out, nil
}

// Accumulate folds inc into p in place — the incremental entry point of
// the streaming window combine, equivalent to p = Merge(p, inc) without
// reallocating p. A zero-profile p (only Module set) is a valid identity
// element: accumulating every increment of a windowed run in emission
// order reconstructs the one-shot profile exactly (counts, callee
// tables, and cost counters telescope; blocks stay sorted by start).
func (p *Profile) Accumulate(inc *Profile) error {
	if inc.Module != p.Module {
		return fmt.Errorf("dbi: accumulate: module %q vs %q", inc.Module, p.Module)
	}
	if p.CalleeCounts == nil {
		p.CalleeCounts = make(map[uint64]uint64)
	}
	idx := make(map[uint64]*Block, len(p.Blocks))
	for _, b := range p.Blocks {
		idx[b.Start] = b
	}
	for _, b := range inc.Blocks {
		acc := idx[b.Start]
		if acc == nil {
			cp := *b
			if b.Targets != nil {
				cp.Targets = make(map[uint64]uint64, len(b.Targets))
				for t, n := range b.Targets {
					cp.Targets[t] = n
				}
			}
			idx[b.Start] = &cp
			p.Blocks = append(p.Blocks, &cp)
			continue
		}
		if acc.TermOff != b.TermOff || acc.Kind != b.Kind {
			return fmt.Errorf("dbi: accumulate: block 0x%x shape differs between increments", b.Start)
		}
		acc.Count += b.Count
		acc.Fallthrough += b.Fallthrough
		if acc.Targets == nil && len(b.Targets) > 0 {
			acc.Targets = make(map[uint64]uint64, len(b.Targets))
		}
		for t, n := range b.Targets {
			acc.Targets[t] += n
		}
	}
	for site, n := range inc.CalleeCounts {
		p.CalleeCounts[site] += n
	}
	p.BaseInstructions += inc.BaseInstructions
	p.InstrEquivalents += inc.InstrEquivalents
	p.StackProfiling = p.StackProfiling || inc.StackProfiling
	if inc.Tiered {
		p.Tiered = true
		p.HotRanges = unionRanges(p.HotRanges, inc.HotRanges)
		p.ColdInstructions += inc.ColdInstructions
	}
	for i := 1; i < len(p.Blocks); i++ {
		for j := i; j > 0 && p.Blocks[j].Start < p.Blocks[j-1].Start; j-- {
			p.Blocks[j], p.Blocks[j-1] = p.Blocks[j-1], p.Blocks[j]
		}
	}
	return nil
}
