package dbi

import "fmt"

// Merge combines several edge profiles of the same module: block counts,
// edge counters, and callee tables sum. Useful when instrumented runs are
// repeated to cover input-dependent paths before a single analysis pass.
func Merge(profiles ...*Profile) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("dbi: nothing to merge")
	}
	out := &Profile{
		Module:         profiles[0].Module,
		StackProfiling: profiles[0].StackProfiling,
		CalleeCounts:   make(map[uint64]uint64),
	}
	blocks := make(map[uint64]*Block)
	for _, p := range profiles {
		if p.Module != out.Module {
			return nil, fmt.Errorf("dbi: merge: module %q vs %q", p.Module, out.Module)
		}
		for _, b := range p.Blocks {
			acc := blocks[b.Start]
			if acc == nil {
				cp := *b
				cp.Targets = nil
				if b.Targets != nil {
					cp.Targets = make(map[uint64]uint64, len(b.Targets))
				}
				acc = &cp
				acc.Count = 0
				acc.Fallthrough = 0
				blocks[b.Start] = acc
				out.Blocks = append(out.Blocks, acc)
			}
			if acc.TermOff != b.TermOff || acc.Kind != b.Kind {
				return nil, fmt.Errorf("dbi: merge: block 0x%x shape differs between runs", b.Start)
			}
			acc.Count += b.Count
			acc.Fallthrough += b.Fallthrough
			for t, n := range b.Targets {
				acc.Targets[t] += n
			}
		}
		for site, n := range p.CalleeCounts {
			out.CalleeCounts[site] += n
		}
		out.BaseInstructions += p.BaseInstructions
		out.InstrEquivalents += p.InstrEquivalents
	}
	// Deterministic order.
	for i := 1; i < len(out.Blocks); i++ {
		for j := i; j > 0 && out.Blocks[j].Start < out.Blocks[j-1].Start; j-- {
			out.Blocks[j], out.Blocks[j-1] = out.Blocks[j-1], out.Blocks[j]
		}
	}
	return out, nil
}
