package dbi

import (
	"reflect"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/progen"
)

// windowLoop retires ~5000 instructions across a call-heavy nested loop,
// so instruction-count windows see many boundaries, callee counts move,
// and `ret` exercises indirect-target deltas.
const windowLoop = `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 50
outer:
    call kernel
    addi s2, s2, -1
    bnez s2, outer
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func kernel
kernel:
    li t0, 30
kl:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, kl
    ret
.endfunc
`

// TestWindowIncrementsTelescope is the streaming equivalence contract at
// the instrumentation layer: windowed increments must not perturb the
// run, every delta must telescope, and accumulating the increments onto
// a zero profile must reproduce the one-shot execution counts exactly.
func TestWindowIncrementsTelescope(t *testing.T) {
	p, err := asm.Assemble("win", windowLoop)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{StackProfiling: true, RandSeed: 7}
	oneShot, err := Run(p, opts)
	if err != nil {
		t.Fatal(err)
	}

	var incs []*Profile
	finals := 0
	opts.WindowInstructions = 500
	opts.OnWindow = func(inc *Profile, final bool) {
		incs = append(incs, inc)
		if final {
			finals++
		}
	}
	streamed, err := Run(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oneShot.ExecCounts(), streamed.ExecCounts()) {
		t.Error("window emission perturbed the run's own profile")
	}
	if len(incs) < 2 {
		t.Fatalf("only %d increments for a multi-window run", len(incs))
	}
	if finals != 1 {
		t.Fatalf("saw %d final increments, want exactly 1", finals)
	}

	acc := &Profile{Module: oneShot.Module}
	for i, inc := range incs {
		if err := acc.Accumulate(inc); err != nil {
			t.Fatalf("increment %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(acc.ExecCounts(), oneShot.ExecCounts()) {
		t.Error("accumulated execution counts differ from one-shot")
	}
	if acc.BaseInstructions != oneShot.BaseInstructions {
		t.Errorf("base instructions: acc %d, one-shot %d",
			acc.BaseInstructions, oneShot.BaseInstructions)
	}
	if acc.InstrEquivalents != oneShot.InstrEquivalents {
		t.Errorf("instrumentation equivalents: acc %d, one-shot %d",
			acc.InstrEquivalents, oneShot.InstrEquivalents)
	}
	if acc.StackProfiling != oneShot.StackProfiling {
		t.Error("stack-profiling flag not carried by increments")
	}
	if !reflect.DeepEqual(acc.CalleeCounts, oneShot.CalleeCounts) {
		t.Error("accumulated callee counts differ from one-shot")
	}
	// Per-block taken/fallthrough edges must telescope too, not just the
	// headline counts.
	accBlocks := map[uint64]*Block{}
	for _, b := range acc.Blocks {
		accBlocks[b.Start] = b
	}
	for _, b := range oneShot.Blocks {
		ab := accBlocks[b.Start]
		if ab == nil {
			t.Fatalf("block 0x%x missing from accumulated profile", b.Start)
		}
		if ab.Fallthrough != b.Fallthrough {
			t.Errorf("block 0x%x fallthrough: acc %d, one-shot %d",
				b.Start, ab.Fallthrough, b.Fallthrough)
		}
		if !reflect.DeepEqual(ab.Targets, b.Targets) {
			t.Errorf("block 0x%x indirect targets differ", b.Start)
		}
	}
}

// TestAccumulateOrderInvariant proves the fold is a commutative sum on
// counters: increments applied in reverse order produce the same counts.
func TestAccumulateOrderInvariant(t *testing.T) {
	p, err := asm.Assemble("win", windowLoop)
	if err != nil {
		t.Fatal(err)
	}
	var incs []*Profile
	_, err = Run(p, Options{RandSeed: 7, WindowInstructions: 700,
		OnWindow: func(inc *Profile, final bool) { incs = append(incs, inc) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) < 2 {
		t.Fatalf("only %d increments; nothing to permute", len(incs))
	}
	fold := func(order []*Profile) *Profile {
		acc := &Profile{Module: incs[0].Module}
		for _, inc := range order {
			if err := acc.Accumulate(inc); err != nil {
				t.Fatal(err)
			}
		}
		return acc
	}
	fwd := fold(incs)
	rev := make([]*Profile, len(incs))
	for i, inc := range incs {
		rev[len(incs)-1-i] = inc
	}
	bwd := fold(rev)
	if !reflect.DeepEqual(fwd.ExecCounts(), bwd.ExecCounts()) {
		t.Error("execution counts depend on accumulation order")
	}
	if fwd.BaseInstructions != bwd.BaseInstructions {
		t.Error("base instructions depend on accumulation order")
	}
}

// TestAccumulateRejectsMismatches mirrors Merge's compatibility checks.
func TestAccumulateRejectsMismatches(t *testing.T) {
	src := progen.Generate(progen.DefaultConfig(2))
	p, _ := asm.Assemble("gen", src)
	a, err := Run(p, Options{RandSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(p, Options{RandSeed: 7})
	b.Module = "other"
	if err := a.Accumulate(b); err == nil {
		t.Error("module mismatch accepted")
	}
}
