package dbi

import (
	"fmt"
	"sort"

	"optiwise/internal/isa"
)

// Range is a half-open [Lo, Hi) span of module text offsets, aligned to
// instruction boundaries.
type Range struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// Selection is a pre-resolved set of instrumented ("hot") text ranges
// for a tiered run: it is computed once, before execution starts, from
// the sampling pass's cycle attribution, so the engine's per-block
// instrumentation decision is a flag lookup rather than a per-
// instruction policy check. Ranges are normalized (sorted, merged,
// non-empty) at construction.
type Selection struct {
	ranges []Range
}

// NewSelection normalizes ranges into a Selection: empty ranges are
// dropped, the rest sorted by Lo and overlapping or adjacent ranges
// merged.
func NewSelection(ranges []Range) *Selection {
	rs := make([]Range, 0, len(ranges))
	for _, r := range ranges {
		if r.Hi > r.Lo {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:0]
	for _, r := range rs {
		if n := len(out); n > 0 && r.Lo <= out[n-1].Hi {
			if r.Hi > out[n-1].Hi {
				out[n-1].Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return &Selection{ranges: out}
}

// Ranges returns the normalized ranges. Callers must not mutate the
// returned slice.
func (s *Selection) Ranges() []Range { return s.ranges }

// Empty reports whether the selection covers no code at all.
func (s *Selection) Empty() bool { return len(s.ranges) == 0 }

// Covers reports whether off falls inside a selected range.
func (s *Selection) Covers(off uint64) bool {
	rs := s.ranges
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := (lo + hi) / 2
		if rs[mid].Hi <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(rs) && rs[lo].Lo <= off
}

// rangesCover reports whether the contiguous span [lo, hi) lies wholly
// inside a normalized range list. Normalization merges adjacent ranges,
// so a covered contiguous span always sits inside a single range.
func rangesCover(rs []Range, lo, hi uint64) bool {
	i, j := 0, len(rs)
	for i < j {
		mid := (i + j) / 2
		if rs[mid].Hi <= lo {
			i = mid + 1
		} else {
			j = mid
		}
	}
	return i < len(rs) && rs[i].Lo <= lo && hi <= rs[i].Hi
}

// validateRanges checks that ranges are instruction-aligned, non-empty,
// sorted, and disjoint — the invariant NewSelection establishes and the
// wire format requires.
func validateRanges(ranges []Range) error {
	var prev uint64
	for i, r := range ranges {
		if r.Lo%isa.InstBytes != 0 || r.Hi%isa.InstBytes != 0 {
			return fmt.Errorf("hot range %d [%#x,%#x) misaligned", i, r.Lo, r.Hi)
		}
		if r.Hi <= r.Lo {
			return fmt.Errorf("hot range %d [%#x,%#x) empty or inverted", i, r.Lo, r.Hi)
		}
		if i > 0 && r.Lo < prev {
			return fmt.Errorf("hot range %d [%#x,%#x) overlaps or out of order", i, r.Lo, r.Hi)
		}
		prev = r.Hi
	}
	return nil
}
