package dbi

import (
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/progen"
)

func TestMergeDoublesCounts(t *testing.T) {
	src := progen.Generate(progen.DefaultConfig(2))
	p, err := asm.Assemble("gen", src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(p, Options{StackProfiling: true, RandSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Options{StackProfiling: true, RandSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ca, cm := a.ExecCounts(), m.ExecCounts()
	for off, n := range ca {
		if cm[off] != 2*n {
			t.Fatalf("count[%#x] = %d, want %d", off, cm[off], 2*n)
		}
	}
	if m.BaseInstructions != 2*a.BaseInstructions {
		t.Error("base instructions not summed")
	}
	for site, n := range a.CalleeCounts {
		if m.CalleeCounts[site] != 2*n {
			t.Errorf("callee count at %#x not doubled", site)
		}
	}
}

func TestMergeRejectsDifferentModules(t *testing.T) {
	src := progen.Generate(progen.DefaultConfig(2))
	p, _ := asm.Assemble("gen", src)
	a, _ := Run(p, Options{RandSeed: 7})
	b, _ := Run(p, Options{RandSeed: 7})
	b.Module = "other"
	if _, err := Merge(a, b); err == nil {
		t.Error("module mismatch accepted")
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
}

// Merged runs with different seeds still satisfy the combiner: exercised
// indirectly through ExecCounts consistency.
func TestMergeDifferentSeeds(t *testing.T) {
	src := progen.Generate(progen.DefaultConfig(3))
	p, _ := asm.Assemble("gen", src)
	a, err := Run(p, Options{RandSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Options{RandSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var want, got uint64
	for _, n := range a.ExecCounts() {
		want += n
	}
	for _, n := range b.ExecCounts() {
		want += n
	}
	for _, n := range m.ExecCounts() {
		got += n
	}
	if want != got {
		t.Errorf("merged dynamic instructions %d, want %d", got, want)
	}
}
