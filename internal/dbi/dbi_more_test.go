package dbi

import (
	"strings"
	"testing"

	"optiwise/internal/isa"
)

func TestMaxInstructionsEnforced(t *testing.T) {
	p := assemble(t, `
.func main
main:
loop:
    j loop
.endfunc
`)
	_, err := Run(p, Options{MaxInstructions: 100})
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("err = %v", err)
	}
}

func TestCostModelOverride(t *testing.T) {
	p := assemble(t, `
.func main
main:
    li t0, 100
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    syscall
.endfunc
`)
	cheap := CostModel{} // everything free
	prof, err := Run(p, Options{Costs: &cheap})
	if err != nil {
		t.Fatal(err)
	}
	if prof.InstrEquivalents != prof.BaseInstructions {
		t.Errorf("zero-cost model: equiv %d != base %d",
			prof.InstrEquivalents, prof.BaseInstructions)
	}
	if prof.Overhead() != 1.0 {
		t.Errorf("overhead = %f, want exactly 1", prof.Overhead())
	}
}

func TestBlocksSortedByStart(t *testing.T) {
	p := assemble(t, `
.func main
main:
    li t0, 5
loop:
    addi t0, t0, -1
    beqz t0, out
    j loop
out:
    li a7, 93
    syscall
.endfunc
`)
	prof, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(prof.Blocks); i++ {
		if prof.Blocks[i].Start < prof.Blocks[i-1].Start {
			t.Fatal("blocks not sorted")
		}
	}
}

func TestSyscallEdgeFallsThrough(t *testing.T) {
	// A non-exit syscall terminates its block; execution continues at the
	// next block (§IV-C "System call").
	p := assemble(t, `
.func main
main:
    li s2, 3
loop:
    li a7, 1000
    syscall
    addi s2, s2, -1
    bnez s2, loop
    li a7, 93
    syscall
.endfunc
`)
	prof, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The rand syscall terminator is shared by two overlapping blocks
	// (function entry and loop back-edge paths); counts sum per
	// terminator.
	counts := prof.ExecCounts()
	perTerm := make(map[uint64]uint64)
	var randTerm uint64
	for _, b := range prof.Blocks {
		if b.Kind == TermSyscall && counts[b.TermOff] == 3 {
			perTerm[b.TermOff] += b.Count
			randTerm = b.TermOff
		}
	}
	if perTerm[randTerm] != 3 {
		t.Fatalf("rand syscall terminator executes %d times, want 3 (%+v)",
			perTerm[randTerm], prof.Blocks)
	}
	// The instruction right after the syscall must execute 3 times too.
	if counts[randTerm+isa.InstBytes] != 3 {
		t.Errorf("post-syscall instruction count = %d, want 3",
			counts[randTerm+isa.InstBytes])
	}
}

func TestProfileOverheadZeroBase(t *testing.T) {
	p := &Profile{}
	if p.Overhead() != 0 {
		t.Error("overhead of empty profile should be 0")
	}
}

func TestExecCountsEmptyProfile(t *testing.T) {
	p := &Profile{}
	if len(p.ExecCounts()) != 0 {
		t.Error("empty profile should have no counts")
	}
}

func TestTranslateCostChargedOncePerBlock(t *testing.T) {
	p := assemble(t, `
.func main
main:
    li t0, 1000
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    syscall
.endfunc
`)
	costs := CostModel{Translate: 1000}
	prof, err := Run(p, Options{Costs: &costs})
	if err != nil {
		t.Fatal(err)
	}
	wantTranslate := uint64(len(prof.Blocks)) * 1000
	if prof.InstrEquivalents != prof.BaseInstructions+wantTranslate {
		t.Errorf("equiv %d, want base %d + translate %d",
			prof.InstrEquivalents, prof.BaseInstructions, wantTranslate)
	}
}

func TestStackProfilingBalancedAtExit(t *testing.T) {
	// Nested calls all return before exit: the engine's call stack must
	// be balanced, which shows as callee counts strictly below the total.
	p := assemble(t, `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    call f
    ld ra, 8(sp)
    addi sp, sp, 16
    li a7, 93
    syscall
.endfunc
.func f
f:
    nop
    ret
.endfunc
`)
	prof, err := Run(p, Options{StackProfiling: true})
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, n := range prof.CalleeCounts {
		sum += n
	}
	if sum >= prof.BaseInstructions {
		t.Errorf("callee counts %d should be below total %d", sum, prof.BaseInstructions)
	}
	if prof.CalleeCounts[8] != 2 { // call at offset 8; f is nop+ret
		t.Errorf("callee count = %d, want 2", prof.CalleeCounts[8])
	}
}
