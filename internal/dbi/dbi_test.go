package dbi

import (
	"bytes"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/interp"
	"optiwise/internal/isa"
	"optiwise/internal/progen"
	"optiwise/internal/program"
)

func assemble(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBlockDiscovery(t *testing.T) {
	p := assemble(t, `
.func main
main:
    li t0, 3          # 0x0
loop:
    addi t0, t0, -1   # 0x4
    bnez t0, loop     # 0x8
    li a7, 93         # 0xc
    syscall           # 0x10
.endfunc
`)
	prof, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Expected dynamic blocks: [0x0..0x8] (entry), [0x4..0x8] (loop
	// back-edge target, overlapping), [0xc..0x10] (fall-through).
	if len(prof.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3: %+v", len(prof.Blocks), prof.Blocks)
	}
	byStart := make(map[uint64]*Block)
	for _, b := range prof.Blocks {
		byStart[b.Start] = b
	}
	if b := byStart[0]; b == nil || b.NumInsts != 3 || b.Count != 1 || b.Kind != TermCond {
		t.Errorf("entry block wrong: %+v", b)
	}
	if b := byStart[4]; b == nil || b.NumInsts != 2 || b.Count != 2 {
		t.Errorf("loop block wrong: %+v", b)
	}
	if b := byStart[12]; b == nil || b.Kind != TermSyscall || b.Count != 1 {
		t.Errorf("exit block wrong: %+v", b)
	}
}

func TestExecCountsSumOverlaps(t *testing.T) {
	p := assemble(t, `
.func main
main:
    li t0, 5
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    syscall
.endfunc
`)
	prof, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := prof.ExecCounts()
	// li: 1; addi/bnez: 5 each; li a7/syscall: 1 each.
	want := map[uint64]uint64{0: 1, 4: 5, 8: 5, 12: 1, 16: 1}
	for off, n := range want {
		if counts[off] != n {
			t.Errorf("count[%#x] = %d, want %d", off, counts[off], n)
		}
	}
}

func TestExecCountsMatchInterpreter(t *testing.T) {
	// Property: summed per-instruction counts equal the interpreter's
	// retired instruction count, on random programs.
	for seed := int64(0); seed < 10; seed++ {
		src := progen.Generate(progen.DefaultConfig(seed))
		p, err := asm.Assemble("gen", src)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := Run(p, Options{StackProfiling: true, RandSeed: 7})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref := interp.New(program.Load(p, program.LoadOptions{}), 7)
		if err := ref.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, n := range prof.ExecCounts() {
			total += n
		}
		if total != ref.Steps {
			t.Errorf("seed %d: summed counts %d != %d retired", seed, total, ref.Steps)
		}
		if prof.BaseInstructions != ref.Steps {
			t.Errorf("seed %d: base instructions %d != %d", seed, prof.BaseInstructions, ref.Steps)
		}
	}
}

func TestConditionalEdgeAlgebra(t *testing.T) {
	// Taken count must equal block count minus fall-through count.
	p := assemble(t, `
.func main
main:
    li t0, 10
    li t1, 0
loop:
    andi t2, t0, 1
    beqz t2, even     # taken on even t0: 5 of 10 times
    addi t1, t1, 1
even:
    addi t0, t0, -1
    bnez t0, loop
    mov a0, t1
    li a7, 93
    syscall
.endfunc
`)
	prof, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The beqz terminator appears in two overlapping dynamic blocks (the
	// function-entry path and the back-edge path) — the §IV-C disparity.
	// Per-terminator edge counts are the sums across those blocks.
	var count, fall uint64
	var found bool
	for _, b := range prof.Blocks {
		if b.Kind == TermCond && b.TermOp == isa.BEQ {
			if inst, _ := p.InstAt(b.TermOff); inst.Rt == isa.X0 && inst.Rs == isa.T2 {
				count += b.Count
				fall += b.Fallthrough
				found = true
			}
		}
	}
	if !found {
		t.Fatal("conditional block not found")
	}
	if count != 10 {
		t.Errorf("cond terminator count = %d, want 10", count)
	}
	if fall != 5 {
		t.Errorf("fallthrough = %d, want 5", fall)
	}
	if taken := count - fall; taken != 5 {
		t.Errorf("derived taken = %d, want 5", taken)
	}
}

func TestIndirectTargets(t *testing.T) {
	p := assemble(t, `
.data
tab: .quad fa, fb
.text
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 6
    li s3, 0          # index alternates 0,1,0,1...
loop:
    la t0, tab
    slli t1, s3, 3
    add t0, t0, t1
    ld t2, 0(t0)
    li t3, 0x200000
    sub t4, gp, t3
    add t2, t2, t4
    callr t2
    xori s3, s3, 1
    addi s2, s2, -1
    bnez s2, loop
    ld ra, 8(sp)
    addi sp, sp, 16
    li a7, 93
    syscall
.endfunc
.func fa
fa:
    addi a0, a0, 1
    ret
.endfunc
.func fb
fb:
    addi a0, a0, 2
    ret
.endfunc
`)
	prof, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	faOff, _ := p.SymbolByName("fa")
	fbOff, _ := p.SymbolByName("fb")
	// The callr terminator belongs to two overlapping dynamic blocks
	// (entry path and back-edge path); sum their target tables.
	targets := make(map[uint64]uint64)
	var found bool
	for _, b := range prof.Blocks {
		if b.TermOp == isa.CALLR {
			found = true
			for off, n := range b.Targets {
				targets[off] += n
			}
		}
	}
	if !found {
		t.Fatal("no callr block")
	}
	if targets[faOff] != 3 || targets[fbOff] != 3 {
		t.Errorf("targets = %v, want 3 each for %#x/%#x", targets, faOff, fbOff)
	}
	// Returns are indirect too: fa's ret block should have main's
	// post-call offset as target, 3 times.
	var rets int
	for _, b := range prof.Blocks {
		if b.TermOp == isa.RET {
			for _, n := range b.Targets {
				rets += int(n)
			}
		}
	}
	if rets != 6 {
		t.Errorf("return edges = %d, want 6", rets)
	}
}

func TestStackProfilingCalleeCounts(t *testing.T) {
	// Algorithm 1: callee_count_table[call site] accumulates instructions
	// executed in callees (transitively).
	p := assemble(t, `
.func main
main:
    addi sp, sp, -16  # 0x0
    st ra, 8(sp)      # 0x4
    call f            # 0x8    <- call site A
    call f            # 0xc    <- call site B
    ld ra, 8(sp)
    addi sp, sp, 16
    li a7, 93
    syscall
.endfunc
.func f
f:
    addi sp, sp, -16
    st ra, 8(sp)
    call g
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
.endfunc
.func g
g:
    nop
    nop
    ret
.endfunc
`)
	prof, err := Run(p, Options{StackProfiling: true})
	if err != nil {
		t.Fatal(err)
	}
	// f executes 6 instructions itself plus g's 3 = 9 per call.
	if got := prof.CalleeCounts[0x8]; got != 9 {
		t.Errorf("callee count at site A = %d, want 9", got)
	}
	if got := prof.CalleeCounts[0xc]; got != 9 {
		t.Errorf("callee count at site B = %d, want 9", got)
	}
	// The call inside f runs twice, 3 instructions in g each time.
	fOff, _ := p.SymbolByName("f")
	if got := prof.CalleeCounts[fOff+8]; got != 6 {
		t.Errorf("callee count at f's call = %d, want 6", got)
	}
}

func TestRecursionCalleeCounts(t *testing.T) {
	// Recursive calls must not wedge the counter stack.
	p := assemble(t, `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li a0, 5
    call fact
    ld ra, 8(sp)
    addi sp, sp, 16
    li a7, 93
    syscall
.endfunc
.func fact
fact:
    addi sp, sp, -16
    st ra, 8(sp)
    st a0, 0(sp)
    ble a0, zero, base
    addi a0, a0, -1
    call fact
    ld t0, 0(sp)
    j out
base:
    li a0, 1
out:
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
.endfunc
`)
	prof, err := Run(p, Options{StackProfiling: true})
	if err != nil {
		t.Fatal(err)
	}
	mainCall := uint64(0xc) // call fact in main (4th instruction)
	if prof.CalleeCounts[mainCall] == 0 {
		t.Errorf("recursive callee count missing: %v", prof.CalleeCounts)
	}
}

func TestOverheadDominatedByIndirectBranches(t *testing.T) {
	direct := assemble(t, `
.func main
main:
    li t0, 2000
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    syscall
.endfunc
`)
	indirect := assemble(t, `
.func main
main:
    li t0, 2000
    la t1, back       # la yields the absolute address directly
back:
    addi t0, t0, -1
    beqz t0, done
    jr t1
done:
    li a7, 93
    syscall
.endfunc
`)
	dp, err := Run(direct, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := Run(indirect, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ip.Overhead() < 5*dp.Overhead() {
		t.Errorf("indirect overhead %.1fx should dwarf direct %.1fx",
			ip.Overhead(), dp.Overhead())
	}
	if dp.Overhead() < 1.0 {
		t.Errorf("overhead below 1x: %f", dp.Overhead())
	}
}

func TestStackProfilingCostsExtra(t *testing.T) {
	src := progen.Generate(progen.DefaultConfig(3))
	p, err := asm.Assemble("gen", src)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Run(p, Options{StackProfiling: true, RandSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(p, Options{RandSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if with.InstrEquivalents <= without.InstrEquivalents {
		t.Error("stack profiling should cost additional overhead")
	}
	if len(without.CalleeCounts) != 0 {
		t.Error("callee counts recorded with stack profiling off")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	p := assemble(t, `
.func main
main:
    li t0, 3
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    syscall
.endfunc
`)
	prof, err := Run(p, Options{StackProfiling: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Module != prof.Module || len(got.Blocks) != len(prof.Blocks) {
		t.Error("round trip lost data")
	}
	for i := range got.Blocks {
		g, w := got.Blocks[i], prof.Blocks[i]
		if g.Start != w.Start || g.Count != w.Count || g.NumInsts != w.NumInsts ||
			g.Kind != w.Kind || g.Fallthrough != w.Fallthrough {
			t.Errorf("block %d mismatch: %+v vs %+v", i, g, w)
		}
	}
}

func TestDeterministicAcrossASLR(t *testing.T) {
	src := progen.Generate(progen.DefaultConfig(6))
	p, err := asm.Assemble("gen", src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(p, Options{StackProfiling: true, RandSeed: 7, ASLRSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Options{StackProfiling: true, RandSeed: 7, ASLRSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	// Module-relative profiles must be identical regardless of load base.
	ca, cb := a.ExecCounts(), b.ExecCounts()
	if len(ca) != len(cb) {
		t.Fatalf("count sets differ: %d vs %d", len(ca), len(cb))
	}
	for off, n := range ca {
		if cb[off] != n {
			t.Errorf("count[%#x]: %d vs %d", off, n, cb[off])
		}
	}
}
