package dbi

import (
	"encoding/json"
	"fmt"
	"io"
)

// Write serializes the profile (the DynamoRIO client's output file).
func (p *Profile) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(p)
}

// Read deserializes a profile written by Write.
func Read(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("dbi: decode: %w", err)
	}
	return &p, nil
}
