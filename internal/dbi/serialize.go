package dbi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"optiwise/internal/fault"
	"optiwise/internal/isa"
	"optiwise/internal/trailer"
)

// Deserialization limits. Edge profiles now cross a network boundary
// (the profiling service accepts them and the artifacts they embed), so
// Read refuses anything that would let a hostile or corrupt stream pin
// memory or smuggle structurally impossible counts into the analysis.
const (
	// MaxProfileBytes caps the serialized size Read will consume.
	MaxProfileBytes = 128 << 20
	// MaxBlocks caps the number of dynamic blocks in one profile.
	MaxBlocks = 1 << 20
	// MaxBlockInsts caps the declared length of a single block.
	MaxBlockInsts = 1 << 20
	// MaxIndirectTargets caps the per-block indirect-target table.
	MaxIndirectTargets = 1 << 16
	// MaxCalleeSites caps the Algorithm 1 callee-count table.
	MaxCalleeSites = 1 << 20
	// MaxTextOffset bounds every module offset a profile may mention;
	// it comfortably exceeds any assemblable module while keeping
	// offset arithmetic far from overflow.
	MaxTextOffset = 1 << 40
)

// Write serializes the profile (the DynamoRIO client's output file):
// the JSON payload followed by a magic+length+CRC trailer
// (internal/trailer) so readers detect truncation and bit flips fast.
// A fault site covers the encoded bytes before they reach w.
func (p *Profile) Write(w io.Writer) error {
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := fault.Err(fault.SiteDBIWrite); err != nil {
		return fmt.Errorf("dbi: write: %w", err)
	}
	data = fault.Bytes(fault.SiteDBIWrite, data)
	_, err = w.Write(trailer.Append(data))
	return err
}

// Read deserializes a profile written by Write. Input is untrusted:
// the stream is size-capped at MaxProfileBytes, the trailer (when
// present) is checksum-verified — a damaged frame fails fast with a
// typed *trailer.CorruptError — legacy untrailered files decode with
// a strict trailing-garbage check, and the decoded profile is
// validated (see Validate) before it is returned. A truncated,
// oversized, bit-flipped, or structurally inconsistent stream yields
// a descriptive error, never a panic or an unbounded allocation.
func Read(r io.Reader) (*Profile, error) {
	lr := &io.LimitedReader{R: r, N: MaxProfileBytes + int64(trailer.Size) + 1}
	data, err := io.ReadAll(lr)
	if err != nil {
		return nil, fmt.Errorf("dbi: read: %w", err)
	}
	if lr.N <= 0 {
		return nil, fmt.Errorf("dbi: profile exceeds %d bytes", int64(MaxProfileBytes))
	}
	if err := fault.Err(fault.SiteDBIRead); err != nil {
		return nil, fmt.Errorf("dbi: read: %w", err)
	}
	data = fault.Bytes(fault.SiteDBIRead, data)
	payload, _, err := trailer.Verify(data)
	if err != nil {
		return nil, fmt.Errorf("dbi: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("dbi: decode: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("dbi: decode: trailing data after profile")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dbi: invalid profile: %w", err)
	}
	return &p, nil
}

// Validate checks the structural invariants every well-formed edge
// profile satisfies: bounded and instruction-aligned offsets, block
// lengths that agree with their terminator offsets (the format's
// length-prefix check), counter algebra that cannot exceed the block's
// execution count, and blocks sorted by start offset. It is applied to
// every profile crossing a trust boundary.
func (p *Profile) Validate() error {
	if p.Module == "" {
		return fmt.Errorf("empty module name")
	}
	if len(p.Blocks) > MaxBlocks {
		return fmt.Errorf("%d blocks exceeds limit %d", len(p.Blocks), MaxBlocks)
	}
	if len(p.CalleeCounts) > MaxCalleeSites {
		return fmt.Errorf("%d callee-count sites exceeds limit %d",
			len(p.CalleeCounts), MaxCalleeSites)
	}
	var prevStart uint64
	for i, b := range p.Blocks {
		if b == nil {
			return fmt.Errorf("block %d: null entry", i)
		}
		if err := b.validate(); err != nil {
			return fmt.Errorf("block %d (start %#x): %w", i, b.Start, err)
		}
		if i > 0 && b.Start <= prevStart {
			return fmt.Errorf("block %d: start %#x not strictly after previous %#x",
				i, b.Start, prevStart)
		}
		prevStart = b.Start
	}
	for off := range p.CalleeCounts {
		if off%isa.InstBytes != 0 || off >= MaxTextOffset {
			return fmt.Errorf("callee-count site %#x misaligned or out of range", off)
		}
	}
	if !p.Tiered {
		if len(p.HotRanges) != 0 {
			return fmt.Errorf("hot ranges on a non-tiered profile")
		}
		if p.ColdInstructions != 0 {
			return fmt.Errorf("cold-instruction count on a non-tiered profile")
		}
	} else {
		if len(p.HotRanges) > MaxBlocks {
			return fmt.Errorf("%d hot ranges exceeds limit %d", len(p.HotRanges), MaxBlocks)
		}
		if err := validateRanges(p.HotRanges); err != nil {
			return err
		}
		for _, r := range p.HotRanges {
			if r.Hi > MaxTextOffset {
				return fmt.Errorf("hot range [%#x,%#x) out of range", r.Lo, r.Hi)
			}
		}
		if p.ColdInstructions > p.BaseInstructions {
			return fmt.Errorf("cold instructions %d exceed base instructions %d",
				p.ColdInstructions, p.BaseInstructions)
		}
	}
	return nil
}

func (b *Block) validate() error {
	if b.Start%isa.InstBytes != 0 || b.Start >= MaxTextOffset {
		return fmt.Errorf("start offset misaligned or out of range")
	}
	if b.NumInsts < 1 || b.NumInsts > MaxBlockInsts {
		return fmt.Errorf("declared length %d outside [1, %d]", b.NumInsts, MaxBlockInsts)
	}
	// Length-prefix validation: the declared instruction count must put
	// the terminator exactly at the block's last slot.
	wantTerm := b.Start + uint64(b.NumInsts-1)*isa.InstBytes
	if b.TermOff != wantTerm {
		return fmt.Errorf("terminator offset %#x disagrees with declared length %d (want %#x)",
			b.TermOff, b.NumInsts, wantTerm)
	}
	if b.Kind > TermSyscall {
		return fmt.Errorf("unknown terminator kind %d", b.Kind)
	}
	if b.Kind != TermCond && b.Fallthrough != 0 {
		return fmt.Errorf("fallthrough count %d on non-conditional terminator", b.Fallthrough)
	}
	if b.Fallthrough > b.Count {
		return fmt.Errorf("fallthrough count %d exceeds execution count %d",
			b.Fallthrough, b.Count)
	}
	if b.Kind != TermIndirect && len(b.Targets) != 0 {
		return fmt.Errorf("indirect-target table on non-indirect terminator")
	}
	if len(b.Targets) > MaxIndirectTargets {
		return fmt.Errorf("%d indirect targets exceeds limit %d",
			len(b.Targets), MaxIndirectTargets)
	}
	var targetSum uint64
	for off, n := range b.Targets {
		if off%isa.InstBytes != 0 || off >= MaxTextOffset {
			return fmt.Errorf("indirect target %#x misaligned or out of range", off)
		}
		s := targetSum + n
		if s < targetSum {
			return fmt.Errorf("indirect target counts overflow")
		}
		targetSum = s
	}
	if targetSum > b.Count {
		return fmt.Errorf("indirect target counts sum to %d, exceeding execution count %d",
			targetSum, b.Count)
	}
	return nil
}
