package dbi

// Streaming windowed profiling, instrumentation half: when
// Options.WindowInstructions is set, the engine emits a profile
// *increment* every N retired (original-program) instructions plus a
// final increment after the run exits — each increment carrying only
// the per-block count deltas, callee-table deltas, and cost deltas of
// its window. Accumulating the increments in order (see Accumulate)
// reconstructs the one-shot profile exactly.
//
// Windows are measured in retired instructions because the functional
// interpreter has no cycle clock; the caller maps its cycle-based
// stream window onto instructions, the same loose equivalence
// optiwise.Options.MaxCycles already uses for this pass. Boundaries are
// checked at block granularity (blocks are a handful of instructions),
// so when disabled the run loop pays one nil compare per block.

// blockSnap is the per-block counter state at the last emitted window.
type blockSnap struct {
	count   uint64
	fall    uint64
	targets map[uint64]uint64
}

// winState is the engine's window-emission state, nil when streaming is
// off.
type winState struct {
	every uint64
	next  uint64
	emit  func(inc *Profile, final bool)

	counts  map[uint64]*blockSnap
	callees map[uint64]uint64
	steps   uint64 // retired instructions at the last window
	equiv   uint64 // instruction equivalents at the last window
	cold    uint64 // cold instructions at the last window (tiered runs)
}

func newWinState(every uint64, emit func(*Profile, bool)) *winState {
	return &winState{
		every:   every,
		next:    every,
		emit:    emit,
		counts:  make(map[uint64]*blockSnap),
		callees: make(map[uint64]uint64),
	}
}

// flushWindow emits the delta since the previous window as an increment
// profile and advances the snapshots. Blocks untouched within the
// window are skipped — an increment names only what moved.
func (e *Engine) flushWindow(final bool) {
	w := e.win
	inc := &Profile{
		Module:         e.prof.Module,
		StackProfiling: e.prof.StackProfiling,
		CalleeCounts:   make(map[uint64]uint64),
	}
	for _, b := range e.prof.Blocks {
		snap := w.counts[b.Start]
		if snap == nil {
			snap = &blockSnap{}
			if b.Targets != nil {
				snap.targets = make(map[uint64]uint64)
			}
			w.counts[b.Start] = snap
		}
		dCount := b.Count - snap.count
		if dCount == 0 {
			continue // fallthrough and targets only move with the count
		}
		nb := &Block{
			Start:       b.Start,
			NumInsts:    b.NumInsts,
			TermOff:     b.TermOff,
			TermOp:      b.TermOp,
			Kind:        b.Kind,
			Count:       dCount,
			Fallthrough: b.Fallthrough - snap.fall,
			TakenTarget: b.TakenTarget,
		}
		if b.Targets != nil {
			nb.Targets = make(map[uint64]uint64)
			for t, n := range b.Targets {
				if d := n - snap.targets[t]; d > 0 {
					nb.Targets[t] = d
					snap.targets[t] = n
				}
			}
		}
		snap.count = b.Count
		snap.fall = b.Fallthrough
		inc.Blocks = append(inc.Blocks, nb)
	}
	// Deterministic increment order regardless of discovery order (the
	// run profile is only sorted at exit).
	for i := 1; i < len(inc.Blocks); i++ {
		for j := i; j > 0 && inc.Blocks[j].Start < inc.Blocks[j-1].Start; j-- {
			inc.Blocks[j], inc.Blocks[j-1] = inc.Blocks[j-1], inc.Blocks[j]
		}
	}
	for site, n := range e.prof.CalleeCounts {
		if d := n - w.callees[site]; d > 0 {
			inc.CalleeCounts[site] = d
			w.callees[site] = n
		}
	}
	inc.BaseInstructions = e.m.Steps - w.steps
	w.steps = e.m.Steps
	inc.InstrEquivalents = e.prof.InstrEquivalents - w.equiv
	w.equiv = e.prof.InstrEquivalents
	if e.tiered {
		// Every increment of a tiered run carries the mode and ranges
		// (they are configuration, not counters), plus this window's
		// cold-instruction delta, so increments telescope to the
		// one-shot profile exactly.
		inc.Tiered = true
		inc.HotRanges = e.prof.HotRanges
		inc.ColdInstructions = e.prof.ColdInstructions - w.cold
		w.cold = e.prof.ColdInstructions
	}
	w.emit(inc, final)
}
