package dbi

import (
	"bytes"
	"errors"
	"testing"

	"optiwise/internal/isa"
	"optiwise/internal/trailer"
)

// fuzzSeedProfile builds a small, fully valid edge profile by hand so
// the fuzzer starts from structurally interesting input.
func fuzzSeedProfile() *Profile {
	return &Profile{
		Module: "seed",
		Blocks: []*Block{
			{Start: 0, NumInsts: 3, TermOff: 2 * isa.InstBytes, TermOp: isa.BNE,
				Kind: TermCond, Count: 10, Fallthrough: 4, TakenTarget: 0},
			{Start: 3 * isa.InstBytes, NumInsts: 1, TermOff: 3 * isa.InstBytes,
				TermOp: isa.RET, Kind: TermIndirect, Count: 6,
				Targets: map[uint64]uint64{4 * isa.InstBytes: 6}},
			{Start: 4 * isa.InstBytes, NumInsts: 2, TermOff: 5 * isa.InstBytes,
				TermOp: isa.SYSCALL, Kind: TermSyscall, Count: 1},
		},
		CalleeCounts:     map[uint64]uint64{2 * isa.InstBytes: 40},
		BaseInstructions: 100,
		InstrEquivalents: 700,
		StackProfiling:   true,
	}
}

// FuzzRead hammers the hardened deserializer: no input may panic it,
// and any input it accepts must satisfy Validate and survive a
// write/read round trip.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := fuzzSeedProfile().Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                             // truncated framed stream
	f.Add(valid[:len(valid)-trailer.Size])                                  // legacy: payload without trailer
	f.Add(append([]byte(nil), trailer.Append([]byte(`{"module":"m"}`))...)) // framed minimal
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40 // payload bit flip under an intact trailer
	f.Add(flipped)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"module":"m","blocks":[{"start":8,"n":0,"term":8}]}`))
	f.Add([]byte(`{"module":"m","blocks":[{"start":7,"n":1,"term":7}]}`))
	f.Add([]byte(`{"module":"m","blocks":[{"start":0,"n":1,"term":0,"kind":9}]}`))
	f.Add([]byte(`{"module":"m","blocks":[{"start":0,"n":1,"term":0,"count":1,"fallthrough":5,"kind":1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Read accepted a profile Validate rejects: %v", err)
		}
		var out bytes.Buffer
		if err := p.Write(&out); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if _, err := Read(&out); err != nil {
			t.Fatalf("round trip: %v", err)
		}
		_ = p.Overhead()
	})
}

// TestReadRejectsMalformed locks in the specific failure modes the
// network boundary must catch.
func TestReadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty module", `{"blocks":[]}`},
		{"zero-length block", `{"module":"m","blocks":[{"start":0,"n":0,"term":0}]}`},
		{"misaligned start", `{"module":"m","blocks":[{"start":3,"n":1,"term":3}]}`},
		{"length-prefix mismatch", `{"module":"m","blocks":[{"start":0,"n":2,"term":0}]}`},
		{"unknown terminator kind", `{"module":"m","blocks":[{"start":0,"n":1,"term":0,"kind":7}]}`},
		{"fallthrough exceeds count", `{"module":"m","blocks":[{"start":0,"n":1,"term":0,"kind":1,"count":2,"fallthrough":3}]}`},
		{"unsorted blocks", `{"module":"m","blocks":[{"start":8,"n":1,"term":8},{"start":0,"n":1,"term":0}]}`},
		{"targets on direct terminator", `{"module":"m","blocks":[{"start":0,"n":1,"term":0,"kind":0,"count":1,"targets":{"8":1}}]}`},
		{"truncated stream", `{"module":"m","blocks":[{"sta`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(bytes.NewReader([]byte(c.in))); err == nil {
				t.Fatalf("Read accepted malformed input %q", c.in)
			}
		})
	}
}

// TestReadRoundTripValid confirms a real engine-produced profile still
// round-trips through the hardened reader.
func TestReadRoundTripValid(t *testing.T) {
	var buf bytes.Buffer
	if err := fuzzSeedProfile().Write(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Module != "seed" || len(p.Blocks) != 3 {
		t.Fatalf("round trip mangled profile: %+v", p)
	}
}

// TestReadTrailer locks in the trailer semantics at the dbi boundary:
// framed files verify, damage is a typed corruption error, legacy
// untrailered files still read, trailing garbage does not.
func TestReadTrailer(t *testing.T) {
	var buf bytes.Buffer
	if err := fuzzSeedProfile().Write(&buf); err != nil {
		t.Fatal(err)
	}
	framed := buf.Bytes()

	t.Run("payload bit flip", func(t *testing.T) {
		mut := append([]byte(nil), framed...)
		mut[len(mut)/2-trailer.Size] ^= 0x10
		_, err := Read(bytes.NewReader(mut))
		var ce *trailer.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("want *trailer.CorruptError, got %v", err)
		}
	})
	t.Run("truncation", func(t *testing.T) {
		if _, err := Read(bytes.NewReader(framed[:len(framed)-8])); err == nil {
			t.Fatal("truncated framed profile accepted")
		}
	})
	t.Run("legacy file still reads", func(t *testing.T) {
		legacy := framed[:len(framed)-trailer.Size]
		p, err := Read(bytes.NewReader(legacy))
		if err != nil {
			t.Fatalf("legacy untrailered profile rejected: %v", err)
		}
		if p.Module != "seed" || len(p.Blocks) != 3 {
			t.Fatalf("legacy round trip mangled profile: %+v", p)
		}
	})
	t.Run("legacy trailing garbage", func(t *testing.T) {
		legacy := append([]byte(nil), framed[:len(framed)-trailer.Size]...)
		legacy = append(legacy, []byte("[]")...)
		if _, err := Read(bytes.NewReader(legacy)); err == nil {
			t.Fatal("trailing garbage after legacy payload accepted")
		}
	})
}
