package cfg

import (
	"fmt"

	"optiwise/internal/isa"
)

// FlatGraph is the wire form of a Graph: blocks and edges flattened
// into index-addressed tables that survive JSON encoding. The in-memory
// Graph threads *Edge pointers through both endpoints' Succs/Preds
// lists; flattening writes each edge exactly once (from its source
// block's Succs) and Unflatten rebuilds the shared-pointer shape and
// the byStart index. The cluster layer ships FlatGraphs between nodes
// so a peer-fetched profile renders identically to a locally combined
// one, CFG-derived views included.
type FlatGraph struct {
	Module    string      `json:"module"`
	Blocks    []FlatBlock `json:"blocks,omitempty"`
	Edges     []FlatEdge  `json:"edges,omitempty"`
	CallEdges []CallEdge  `json:"call_edges,omitempty"`
}

// FlatBlock is one CFG block without its edge lists; its index in
// FlatGraph.Blocks is its Block.Index.
type FlatBlock struct {
	Start  uint64 `json:"start"`
	End    uint64 `json:"end"`
	Count  uint64 `json:"count,omitempty"`
	TermOp uint8  `json:"term_op,omitempty"`
}

// FlatEdge is one CFG edge by block index.
type FlatEdge struct {
	From  int      `json:"from"`
	To    int      `json:"to"`
	Count uint64   `json:"count,omitempty"`
	Kind  EdgeKind `json:"kind,omitempty"`
}

// Flatten converts g into its wire form. A nil graph flattens to nil.
func (g *Graph) Flatten() *FlatGraph {
	if g == nil {
		return nil
	}
	f := &FlatGraph{
		Module:    g.Module,
		Blocks:    make([]FlatBlock, len(g.Blocks)),
		CallEdges: g.CallEdges,
	}
	for i, b := range g.Blocks {
		f.Blocks[i] = FlatBlock{Start: b.Start, End: b.End, Count: b.Count, TermOp: uint8(b.TermOp)}
		for _, e := range b.Succs {
			f.Edges = append(f.Edges, FlatEdge{From: e.From, To: e.To, Count: e.Count, Kind: e.Kind})
		}
	}
	return f
}

// Unflatten rebuilds the in-memory Graph: blocks in table order, each
// edge materialized once and linked into both endpoints, byStart
// reindexed. Edge endpoints are validated so a corrupted wire payload
// fails loudly instead of building a graph that panics later.
func (f *FlatGraph) Unflatten() (*Graph, error) {
	if f == nil {
		return nil, nil
	}
	g := &Graph{
		Module:    f.Module,
		Blocks:    make([]*Block, len(f.Blocks)),
		CallEdges: f.CallEdges,
		byStart:   make(map[uint64]int, len(f.Blocks)),
	}
	for i, fb := range f.Blocks {
		if fb.End < fb.Start {
			return nil, fmt.Errorf("cfg: flat block %d has end 0x%x before start 0x%x", i, fb.End, fb.Start)
		}
		g.Blocks[i] = &Block{Index: i, Start: fb.Start, End: fb.End, Count: fb.Count, TermOp: isa.Op(fb.TermOp)}
		g.byStart[fb.Start] = i
	}
	for _, fe := range f.Edges {
		if fe.From < 0 || fe.From >= len(g.Blocks) || fe.To < 0 || fe.To >= len(g.Blocks) {
			return nil, fmt.Errorf("cfg: flat edge %d->%d out of range (%d blocks)", fe.From, fe.To, len(g.Blocks))
		}
		e := &Edge{From: fe.From, To: fe.To, Count: fe.Count, Kind: fe.Kind}
		g.Blocks[e.From].Succs = append(g.Blocks[e.From].Succs, e)
		g.Blocks[e.To].Preds = append(g.Blocks[e.To].Preds, e)
	}
	return g, nil
}
