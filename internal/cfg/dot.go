package cfg

import (
	"fmt"
	"io"

	"optiwise/internal/program"
)

// WriteDot renders fn's CFG subgraph in Graphviz dot format, with blocks
// labelled by offset range and execution count, and edges by kind and
// frequency — the diagram style of the paper's figures 4 and 6.
func (g *Graph) WriteDot(w io.Writer, prog *program.Program, fnName string) error {
	fn, ok := prog.FuncByName(fnName)
	if !ok {
		return fmt.Errorf("cfg: no function %q", fnName)
	}
	sub := g.FunctionSubgraph(fn)
	if len(sub) == 0 {
		return fmt.Errorf("cfg: function %q has no executed blocks", fnName)
	}
	inSub := make(map[int]bool, len(sub))
	for _, i := range sub {
		inSub[i] = true
	}

	if _, err := fmt.Fprintf(w, "digraph %q {\n  node [shape=box, fontname=monospace];\n", fnName); err != nil {
		return err
	}
	for _, i := range sub {
		b := g.Blocks[i]
		if _, err := fmt.Fprintf(w, "  n%d [label=\"0x%x..0x%x\\nexec %d\"];\n",
			i, b.Start, b.End, b.Count); err != nil {
			return err
		}
	}
	for _, i := range sub {
		for _, e := range g.Blocks[i].Succs {
			if !inSub[e.To] {
				continue
			}
			style := ""
			if e.Kind == EdgeTaken || e.Kind == EdgeJump {
				style = ", style=bold"
			}
			if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%s %d\"%s];\n",
				e.From, e.To, e.Kind, e.Count, style); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
