// Package cfg reconstructs a compiler-style control flow graph from the
// DBI engine's dynamic blocks (the loop finder's input, component 4 in the
// paper's figure 3).
//
// DynamoRIO-style dynamic blocks may overlap: a branch into the middle of a
// previously discovered block creates a second block sharing its suffix.
// Compiler basic blocks may not. Following §IV-C, this package takes the
// prefix of each dynamic block that does not overlap any other block and
// computes each CFG block's execution count by summing the counts of all
// dynamic blocks that contain it.
//
// The graph is intra-procedural: call terminators fall through to their
// return point for CFG purposes (calls always return in well-formed
// programs), while the caller→callee relationships are kept separately as
// CallEdges for the call-graph consumers.
package cfg

import (
	"fmt"
	"sort"

	"optiwise/internal/dbi"
	"optiwise/internal/isa"
	"optiwise/internal/program"
)

// EdgeKind classifies a CFG edge.
type EdgeKind uint8

// Edge kinds.
const (
	EdgeFallthrough EdgeKind = iota // sequential flow within a split block
	EdgeNotTaken                    // conditional branch not taken
	EdgeTaken                       // conditional branch taken
	EdgeJump                        // direct unconditional jump
	EdgeIndirect                    // indirect jump (jr) target
	EdgeCallReturn                  // flow from a call to its return point
	EdgeSyscall                     // flow across a system call
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeFallthrough:
		return "fall"
	case EdgeNotTaken:
		return "not-taken"
	case EdgeTaken:
		return "taken"
	case EdgeJump:
		return "jump"
	case EdgeIndirect:
		return "indirect"
	case EdgeCallReturn:
		return "call-return"
	case EdgeSyscall:
		return "syscall"
	}
	return "?"
}

// Edge is one directed CFG edge with its dynamic frequency.
type Edge struct {
	From, To int // block indices
	Count    uint64
	Kind     EdgeKind
}

// Block is a compiler-style basic block (no overlaps).
type Block struct {
	Index int
	// Start is the module offset of the first instruction; End is the
	// offset just past the last instruction.
	Start, End uint64
	Count      uint64
	// TermOp is the terminating operation; NOP for blocks split before a
	// control transfer (pure fall-through blocks).
	TermOp isa.Op
	Succs  []*Edge
	Preds  []*Edge
}

// NumInsts returns the number of instructions in the block.
func (b *Block) NumInsts() int { return int((b.End - b.Start) / isa.InstBytes) }

// Contains reports whether module offset off lies in the block.
func (b *Block) Contains(off uint64) bool { return off >= b.Start && off < b.End }

// CallEdge records one dynamic caller→callee relationship.
type CallEdge struct {
	// CallSite is the call instruction's module offset.
	CallSite uint64
	// Target is the callee entry offset.
	Target uint64
	Count  uint64
}

// Graph is the whole-module CFG.
type Graph struct {
	Module    string
	Blocks    []*Block // sorted by Start
	CallEdges []CallEdge

	byStart map[uint64]int
}

// BlockAt returns the index of the block starting at off, or -1.
func (g *Graph) BlockAt(off uint64) int {
	if i, ok := g.byStart[off]; ok {
		return i
	}
	return -1
}

// BlockContaining returns the index of the block containing off, or -1.
func (g *Graph) BlockContaining(off uint64) int {
	i := sort.Search(len(g.Blocks), func(i int) bool {
		return g.Blocks[i].End > off
	})
	if i < len(g.Blocks) && g.Blocks[i].Contains(off) {
		return i
	}
	return -1
}

// Build reconstructs the CFG from an edge profile.
func Build(prog *program.Program, prof *dbi.Profile) (*Graph, error) {
	if len(prof.Blocks) == 0 {
		return &Graph{Module: prof.Module, byStart: map[uint64]int{}}, nil
	}

	// Leaders: every dynamic block start splits the address space.
	leaderSet := make(map[uint64]bool, len(prof.Blocks))
	for _, d := range prof.Blocks {
		leaderSet[d.Start] = true
	}
	leaders := make([]uint64, 0, len(leaderSet))
	for off := range leaderSet {
		leaders = append(leaders, off)
	}
	sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })

	// Aggregate dynamic blocks per terminator offset: overlapping blocks
	// share the terminator, and edge algebra sums over them (§IV-C).
	type termAgg struct {
		count       uint64
		fallCount   uint64
		takenTarget uint64
		kind        dbi.TermKind
		op          isa.Op
		targets     map[uint64]uint64
	}
	terms := make(map[uint64]*termAgg)
	for _, d := range prof.Blocks {
		a := terms[d.TermOff]
		if a == nil {
			a = &termAgg{takenTarget: d.TakenTarget, kind: d.Kind, op: d.TermOp,
				targets: make(map[uint64]uint64)}
			terms[d.TermOff] = a
		}
		a.count += d.Count
		a.fallCount += d.Fallthrough
		for t, n := range d.Targets {
			a.targets[t] += n
		}
	}

	// Per-instruction execution counts give CFG block counts directly:
	// a CFG block executes as often as its first instruction.
	execCounts := prof.ExecCounts()

	g := &Graph{Module: prof.Module, byStart: make(map[uint64]int)}

	// CFG blocks: segments between consecutive leaders, clipped at each
	// terminator (a terminator ends its block even if the next leader is
	// further away — beyond it is code reached only by fall-through,
	// which forms its own dynamic block and hence its own leader).
	for i, start := range leaders {
		// Find this segment's terminator: the terminator of any dynamic
		// block beginning at or covering start. The nearest terminator at
		// or after start among blocks covering it:
		end := uint64(0)
		var termOp isa.Op = isa.NOP
		if t, op, ok := nearestTerm(prof, start); ok {
			end = t + isa.InstBytes
			termOp = op
		} else {
			return nil, fmt.Errorf("cfg: no terminator covering leader 0x%x", start)
		}
		if i+1 < len(leaders) && leaders[i+1] < end {
			end = leaders[i+1]
			termOp = isa.NOP // split before the terminator: pure fall-through
		}
		b := &Block{
			Index:  len(g.Blocks),
			Start:  start,
			End:    end,
			Count:  execCounts[start],
			TermOp: termOp,
		}
		g.byStart[start] = b.Index
		g.Blocks = append(g.Blocks, b)
	}

	addEdge := func(fromIdx int, to uint64, count uint64, kind EdgeKind) {
		if count == 0 {
			return
		}
		toIdx, ok := g.byStart[to]
		if !ok {
			// Target never executed as a leader (cannot happen: every
			// control transfer target that executed became a leader).
			return
		}
		e := &Edge{From: fromIdx, To: toIdx, Count: count, Kind: kind}
		g.Blocks[fromIdx].Succs = append(g.Blocks[fromIdx].Succs, e)
		g.Blocks[toIdx].Preds = append(g.Blocks[toIdx].Preds, e)
	}

	for _, b := range g.Blocks {
		if b.TermOp == isa.NOP && b.End > b.Start {
			// Split block: unconditional fall-through to the next leader.
			// Exception: a block that is literally a single NOP ending a
			// dynamic block does not occur (NOP is not a terminator).
			addEdge(b.Index, b.End, b.Count, EdgeFallthrough)
			continue
		}
		termOff := b.End - isa.InstBytes
		a := terms[termOff]
		if a == nil {
			continue
		}
		switch a.kind {
		case dbi.TermCond:
			taken := a.count - a.fallCount
			addEdge(b.Index, a.takenTarget, taken, EdgeTaken)
			addEdge(b.Index, b.End, a.fallCount, EdgeNotTaken)
		case dbi.TermDirect:
			if a.op == isa.CALL {
				g.CallEdges = append(g.CallEdges, CallEdge{
					CallSite: termOff, Target: a.takenTarget, Count: a.count,
				})
				addEdge(b.Index, b.End, a.count, EdgeCallReturn)
			} else {
				addEdge(b.Index, a.takenTarget, a.count, EdgeJump)
			}
		case dbi.TermSyscall:
			// The final exit syscall has no successor execution; the edge
			// count is the successor block's observed entries from here.
			n := a.count
			if succ, ok := g.byStart[b.End]; ok {
				if g.Blocks[succ].Count < n {
					n = g.Blocks[succ].Count
				}
			}
			addEdge(b.Index, b.End, n, EdgeSyscall)
		case dbi.TermIndirect:
			switch a.op {
			case isa.CALLR:
				for t, n := range a.targets {
					g.CallEdges = append(g.CallEdges, CallEdge{
						CallSite: termOff, Target: t, Count: n,
					})
				}
				addEdge(b.Index, b.End, a.count, EdgeCallReturn)
			case isa.RET:
				// Function exit: no intra-procedural successor.
			default: // jr: intra-procedural indirect jump (switch tables)
				for t, n := range a.targets {
					addEdge(b.Index, t, n, EdgeIndirect)
				}
			}
		}
	}

	sortCallEdges(g.CallEdges)
	return g, nil
}

// nearestTerm finds the terminator (offset, op) of the dynamic block
// covering off with the closest terminator at or after off.
func nearestTerm(prof *dbi.Profile, off uint64) (uint64, isa.Op, bool) {
	best := ^uint64(0)
	var op isa.Op
	for _, d := range prof.Blocks {
		if d.Start <= off && off <= d.TermOff && d.TermOff < best {
			best = d.TermOff
			op = d.TermOp
		}
	}
	if best == ^uint64(0) {
		return 0, isa.NOP, false
	}
	return best, op, true
}

func sortCallEdges(edges []CallEdge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].CallSite != edges[j].CallSite {
			return edges[i].CallSite < edges[j].CallSite
		}
		return edges[i].Target < edges[j].Target
	})
}

// FunctionSubgraph returns the indices of blocks belonging to fn, in
// start order. The loop finder analyzes one function at a time (§V-A:
// analysis cost is per-function CFG complexity).
func (g *Graph) FunctionSubgraph(fn program.Function) []int {
	var out []int
	for _, b := range g.Blocks {
		if b.Start >= fn.Lo && b.Start < fn.Hi {
			out = append(out, b.Index)
		}
	}
	return out
}

// FlowConservation verifies that for every block, inflow equals outflow
// equals the block count, modulo program entry/exit and function
// boundaries (call/return flow leaves the intra-procedural graph). It
// returns the offsets of blocks violating conservation; the property tests
// use it as a structural invariant.
func (g *Graph) FlowConservation() []uint64 {
	var bad []uint64
	for _, b := range g.Blocks {
		var in, out uint64
		for _, e := range b.Preds {
			in += e.Count
		}
		for _, e := range b.Succs {
			out += e.Count
		}
		// Blocks entered by call (function entries) have no intra-proc
		// inflow; blocks ending in ret/exit-syscall have no outflow.
		inOK := in == b.Count || in == 0
		outOK := out == b.Count || out == 0
		if b.TermOp == isa.SYSCALL {
			outOK = out == b.Count || out == b.Count-1 // final exit
		}
		if !inOK || !outOK {
			bad = append(bad, b.Start)
		}
	}
	return bad
}
