package cfg

import (
	"bytes"
	"strings"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/dbi"
	"optiwise/internal/isa"
	"optiwise/internal/progen"
	"optiwise/internal/program"
)

func buildCFG(t *testing.T, src string) (*program.Program, *Graph) {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := dbi.Run(p, dbi.Options{RandSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p, prof)
	if err != nil {
		t.Fatal(err)
	}
	return p, g
}

func TestLoopCFGShape(t *testing.T) {
	_, g := buildCFG(t, `
.func main
main:
    li t0, 5          # 0x0
loop:
    addi t0, t0, -1   # 0x4
    bnez t0, loop     # 0x8
    li a7, 93         # 0xc
    syscall           # 0x10
.endfunc
`)
	// Compiler blocks: [0x0,0x4) count 1; [0x4,0xc) count 5; [0xc,0x14) count 1.
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d: %+v", len(g.Blocks), g.Blocks)
	}
	b0 := g.Blocks[g.BlockAt(0)]
	b1 := g.Blocks[g.BlockAt(4)]
	b2 := g.Blocks[g.BlockAt(0xc)]
	if b0 == nil || b1 == nil || b2 == nil {
		t.Fatal("missing blocks")
	}
	if b0.End != 4 || b0.Count != 1 {
		t.Errorf("b0 = %+v", b0)
	}
	if b0.TermOp != isa.NOP {
		t.Errorf("b0 should be a split fall-through block, term %v", b0.TermOp)
	}
	if b1.End != 0xc || b1.Count != 5 || b1.TermOp != isa.BNE {
		t.Errorf("b1 = %+v", b1)
	}
	if b2.Count != 1 || b2.TermOp != isa.SYSCALL {
		t.Errorf("b2 = %+v", b2)
	}
	// Edges: b0->b1 (1, fall), b1->b1 (4, taken), b1->b2 (1, not-taken).
	edgeCount := func(from, to *Block, kind EdgeKind) uint64 {
		for _, e := range from.Succs {
			if e.To == to.Index && e.Kind == kind {
				return e.Count
			}
		}
		return 0
	}
	if n := edgeCount(b0, b1, EdgeFallthrough); n != 1 {
		t.Errorf("b0->b1 = %d", n)
	}
	if n := edgeCount(b1, b1, EdgeTaken); n != 4 {
		t.Errorf("b1->b1 taken = %d", n)
	}
	if n := edgeCount(b1, b2, EdgeNotTaken); n != 1 {
		t.Errorf("b1->b2 fall = %d", n)
	}
}

func TestCallEdgesAndCallReturnFlow(t *testing.T) {
	p, g := buildCFG(t, `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 3
loop:
    call f            # call site
    addi s2, s2, -1
    bnez s2, loop
    ld ra, 8(sp)
    addi sp, sp, 16
    li a7, 93
    syscall
.endfunc
.func f
f:
    nop
    ret
.endfunc
`)
	fOff, _ := p.SymbolByName("f")
	if len(g.CallEdges) != 1 {
		t.Fatalf("call edges = %+v", g.CallEdges)
	}
	ce := g.CallEdges[0]
	if ce.Target != fOff || ce.Count != 3 {
		t.Errorf("call edge = %+v", ce)
	}
	// The call block must flow to its return point with count 3.
	callBlk := g.Blocks[g.BlockContaining(ce.CallSite)]
	found := false
	for _, e := range callBlk.Succs {
		if e.Kind == EdgeCallReturn && e.Count == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing call-return edge: %+v", callBlk.Succs)
	}
	// f's blocks must not have intra-procedural successors leaving f.
	fn, _ := p.FuncByName("f")
	fBlk := g.Blocks[g.BlockAt(fOff)]
	for _, e := range fBlk.Succs {
		if g.Blocks[e.To].Start >= fn.Hi {
			t.Error("ret created an intra-procedural edge")
		}
	}
}

func TestBranchIntoMiddleSplits(t *testing.T) {
	// A branch targeting the middle of a straight-line run must split the
	// containing block (the §IV-C overlap disparity).
	_, g := buildCFG(t, `
.func main
main:
    li t0, 3          # 0x0
    li t1, 0          # 0x4
top:
    addi t1, t1, 1    # 0x8   <- fall-through reaches here...
mid:
    addi t1, t1, 2    # 0xc   <- ...and the branch targets here
    addi t0, t0, -1   # 0x10
    bnez t0, mid      # 0x14
    li a7, 93         # 0x18
    syscall           # 0x1c
.endfunc
`)
	// The branch target 0xc becomes a leader and splits the entry run:
	// compiler blocks [0,0xc) count 1, [0xc,0x18) count 3, [0x18,0x20).
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d: %v", len(g.Blocks), starts(g))
	}
	mid := g.Blocks[g.BlockAt(0xc)]
	if mid == nil {
		t.Fatal("no block at 0xc")
	}
	if mid.Count != 3 {
		t.Errorf("mid count = %d, want 3", mid.Count)
	}
	pre := g.Blocks[g.BlockAt(0)]
	if pre.Count != 1 || pre.End != 0xc {
		t.Errorf("pre block = %+v", pre)
	}
	if pre.TermOp != isa.NOP {
		t.Error("pre block should be split (fall-through)")
	}
	// The split's fall-through edge carries the prefix count.
	if len(pre.Succs) != 1 || pre.Succs[0].To != mid.Index || pre.Succs[0].Count != 1 {
		t.Errorf("pre succs = %+v", pre.Succs)
	}
}

func starts(g *Graph) []uint64 {
	var s []uint64
	for _, b := range g.Blocks {
		s = append(s, b.Start)
	}
	return s
}

func TestIndirectJumpEdges(t *testing.T) {
	_, g := buildCFG(t, `
.func main
main:
    li t0, 4
    la t1, back
back:
    addi t0, t0, -1
    beqz t0, done
    jr t1
done:
    li a7, 93
    syscall
.endfunc
`)
	var ind *Block
	for _, b := range g.Blocks {
		if b.TermOp == isa.JR {
			ind = b
		}
	}
	if ind == nil {
		t.Fatal("no jr block")
	}
	var total uint64
	for _, e := range ind.Succs {
		if e.Kind == EdgeIndirect {
			total += e.Count
		}
	}
	if total != 3 {
		t.Errorf("indirect edge flow = %d, want 3", total)
	}
}

func TestFlowConservationOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		src := progen.Generate(progen.DefaultConfig(seed))
		p, err := asm.Assemble("gen", src)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := dbi.Run(p, dbi.Options{RandSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		g, err := Build(p, prof)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bad := g.FlowConservation(); len(bad) > 0 {
			t.Errorf("seed %d: flow conservation violated at %#x", seed, bad)
		}
		// Block counts must equal per-instruction counts of their first
		// instruction.
		counts := prof.ExecCounts()
		for _, b := range g.Blocks {
			if b.Count != counts[b.Start] {
				t.Errorf("seed %d: block %#x count %d != %d", seed, b.Start, b.Count, counts[b.Start])
			}
			// And every instruction inside a compiler block must have the
			// same count — that is what makes it a basic block.
			for off := b.Start; off < b.End; off += isa.InstBytes {
				if counts[off] != b.Count {
					t.Errorf("seed %d: inst %#x count %d != block %d",
						seed, off, counts[off], b.Count)
				}
			}
		}
	}
}

func TestBlocksSortedAndNonOverlapping(t *testing.T) {
	src := progen.Generate(progen.DefaultConfig(4))
	p, err := asm.Assemble("gen", src)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := dbi.Run(p, dbi.Options{RandSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p, prof)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(g.Blocks); i++ {
		prev, cur := g.Blocks[i-1], g.Blocks[i]
		if cur.Start < prev.End {
			t.Fatalf("blocks overlap: [%#x,%#x) and [%#x,%#x)",
				prev.Start, prev.End, cur.Start, cur.End)
		}
	}
}

func TestEmptyProfile(t *testing.T) {
	g, err := Build(&program.Program{Module: "m"}, &dbi.Profile{Module: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 0 || g.BlockAt(0) != -1 || g.BlockContaining(0) != -1 {
		t.Error("empty graph misbehaves")
	}
}

func TestWriteDot(t *testing.T) {
	p, g := buildCFG(t, `
.func main
main:
    li t0, 5
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    syscall
.endfunc
`)
	var buf bytes.Buffer
	if err := g.WriteDot(&buf, p, "main"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "exec 5", "taken 4", "not-taken 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
	if err := g.WriteDot(&buf, p, "nosuch"); err == nil {
		t.Error("unknown function accepted")
	}
}
