// Package mem implements the sparse 64-bit byte-addressable memory used by
// both the functional interpreter and the out-of-order pipeline simulator.
//
// Memory is allocated lazily in fixed-size pages so that programs may use
// widely separated regions (text, data, heap, stack) without the simulator
// reserving gigabytes. All multi-byte accesses are little-endian and may
// straddle page boundaries.
package mem

import "encoding/binary"

// PageBits is the log2 of the page size.
const PageBits = 12

// PageSize is the allocation granule in bytes.
const PageSize = 1 << PageBits

const offMask = PageSize - 1

// Memory is a sparse, lazily allocated address space. The zero value is
// ready to use. Reads of unallocated memory return zero bytes, matching
// zero-initialized BSS semantics; writes allocate.
type Memory struct {
	pages map[uint64]*[PageSize]byte
}

// New returns an empty Memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[PageSize]byte {
	if m.pages == nil {
		if !alloc {
			return nil
		}
		m.pages = make(map[uint64]*[PageSize]byte)
	}
	key := addr >> PageBits
	p := m.pages[key]
	if p == nil && alloc {
		p = new([PageSize]byte)
		m.pages[key] = p
	}
	return p
}

// PagesAllocated reports how many pages have been materialized; the
// simulator uses this to report memory overhead (§V-A).
func (m *Memory) PagesAllocated() int { return len(m.pages) }

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&offMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.page(addr, true)[addr&offMask] = b
}

// Read fills buf with the bytes starting at addr.
func (m *Memory) Read(addr uint64, buf []byte) {
	for len(buf) > 0 {
		off := addr & offMask
		n := PageSize - int(off)
		if n > len(buf) {
			n = len(buf)
		}
		if p := m.page(addr, false); p != nil {
			copy(buf[:n], p[off:int(off)+n])
		} else {
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		addr += uint64(n)
	}
}

// Write copies buf into memory starting at addr.
func (m *Memory) Write(addr uint64, buf []byte) {
	for len(buf) > 0 {
		off := addr & offMask
		n := PageSize - int(off)
		if n > len(buf) {
			n = len(buf)
		}
		copy(m.page(addr, true)[off:int(off)+n], buf[:n])
		buf = buf[n:]
		addr += uint64(n)
	}
}

// Read16 loads a little-endian uint16.
func (m *Memory) Read16(addr uint64) uint16 {
	var b [2]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint16(b[:])
}

// Read32 loads a little-endian uint32.
func (m *Memory) Read32(addr uint64) uint32 {
	var b [4]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Read64 loads a little-endian uint64.
func (m *Memory) Read64(addr uint64) uint64 {
	// Fast path: access within one page.
	off := addr & offMask
	if off <= PageSize-8 {
		if p := m.page(addr, false); p != nil {
			return binary.LittleEndian.Uint64(p[off : off+8])
		}
		return 0
	}
	var b [8]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Write16 stores a little-endian uint16.
func (m *Memory) Write16(addr uint64, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	m.Write(addr, b[:])
}

// Write32 stores a little-endian uint32.
func (m *Memory) Write32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.Write(addr, b[:])
}

// Write64 stores a little-endian uint64.
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr & offMask
	if off <= PageSize-8 {
		binary.LittleEndian.PutUint64(m.page(addr, true)[off:off+8], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Write(addr, b[:])
}

// Clone returns a deep copy of the memory. The profilers use clones so the
// sampling run and the instrumentation run start from identical images.
func (m *Memory) Clone() *Memory {
	c := New()
	for k, p := range m.pages {
		np := new([PageSize]byte)
		*np = *p
		c.pages[k] = np
	}
	return c
}
