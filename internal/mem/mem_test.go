package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestZeroValueReads(t *testing.T) {
	var m Memory
	if m.LoadByte(0x1234) != 0 {
		t.Error("unallocated byte should read 0")
	}
	if m.Read64(0xdeadbeef) != 0 {
		t.Error("unallocated word should read 0")
	}
	buf := make([]byte, 100)
	m.Read(0x5000, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unallocated bulk read should be zeros")
		}
	}
}

func TestByteRoundTrip(t *testing.T) {
	m := New()
	m.StoreByte(42, 0xab)
	if got := m.LoadByte(42); got != 0xab {
		t.Errorf("LoadByte = %#x, want 0xab", got)
	}
	if got := m.LoadByte(43); got != 0 {
		t.Errorf("neighbor should be 0, got %#x", got)
	}
}

func TestWordRoundTrips(t *testing.T) {
	m := New()
	m.Write16(0x100, 0xbeef)
	m.Write32(0x200, 0xdeadbeef)
	m.Write64(0x300, 0x0123456789abcdef)
	if got := m.Read16(0x100); got != 0xbeef {
		t.Errorf("Read16 = %#x", got)
	}
	if got := m.Read32(0x200); got != 0xdeadbeef {
		t.Errorf("Read32 = %#x", got)
	}
	if got := m.Read64(0x300); got != 0x0123456789abcdef {
		t.Errorf("Read64 = %#x", got)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Write64(0, 0x0102030405060708)
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	for i, w := range want {
		if got := m.LoadByte(uint64(i)); got != w {
			t.Errorf("byte %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3) // straddles the first page boundary
	m.Write64(addr, 0x1122334455667788)
	if got := m.Read64(addr); got != 0x1122334455667788 {
		t.Errorf("cross-page Read64 = %#x", got)
	}
	big := bytes.Repeat([]byte{0x5a}, 3*PageSize)
	m.Write(addr, big)
	got := make([]byte, len(big))
	m.Read(addr, got)
	if !bytes.Equal(big, got) {
		t.Error("cross-page bulk round trip failed")
	}
}

func TestPagesAllocated(t *testing.T) {
	m := New()
	if m.PagesAllocated() != 0 {
		t.Error("fresh memory should have no pages")
	}
	m.LoadByte(0) // reads must not allocate
	if m.PagesAllocated() != 0 {
		t.Error("read allocated a page")
	}
	m.StoreByte(0, 1)
	m.StoreByte(PageSize, 1)
	m.StoreByte(PageSize+1, 1)
	if got := m.PagesAllocated(); got != 2 {
		t.Errorf("PagesAllocated = %d, want 2", got)
	}
}

func TestClone(t *testing.T) {
	m := New()
	m.Write64(0x40, 99)
	c := m.Clone()
	c.Write64(0x40, 100)
	if m.Read64(0x40) != 99 {
		t.Error("mutating clone changed original")
	}
	if c.Read64(0x40) != 100 {
		t.Error("clone write lost")
	}
}

func TestQuickRoundTrip64(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64) bool {
		addr %= 1 << 40 // keep the page map small
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBulkRoundTrip(t *testing.T) {
	f := func(addr uint64, data []byte) bool {
		addr %= 1 << 40
		m := New()
		m.Write(addr, data)
		got := make([]byte, len(data))
		m.Read(addr, got)
		return bytes.Equal(data, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: non-overlapping writes do not disturb each other.
func TestQuickIsolation(t *testing.T) {
	f := func(a, b uint32, va, vb uint64) bool {
		addrA := uint64(a)
		addrB := uint64(b)
		if addrA+8 > addrB && addrB+8 > addrA {
			return true // overlapping; skip
		}
		m := New()
		m.Write64(addrA, va)
		m.Write64(addrB, vb)
		return m.Read64(addrA) == va && m.Read64(addrB) == vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
