// Package cache implements the set-associative data-cache hierarchy of the
// pipeline simulator.
//
// The hierarchy's latency spread is what makes per-instruction CPI
// interesting: an L1 hit is invisible inside an out-of-order window, while
// an LLC miss produces the CPI≈279 loads the deepsjeng case study (§VI-B)
// hunts. The geometry defaults mimic the paper's Xeon W-2195 (1.1/18/24 MiB
// L1/L2/L3 per §V).
package cache

import "fmt"

// Level is one set-associative cache level with LRU replacement.
type Level struct {
	name     string
	sets     int
	ways     int
	lineBits uint
	latency  uint64

	tags [][]uint64
	// lru[s][w] is the last-touch stamp for way w of set s.
	lru   [][]uint64
	valid [][]bool
	stamp uint64

	// Stats.
	Hits   uint64
	Misses uint64
}

// NewLevel builds a cache level. size and lineSize are in bytes; latency is
// the hit latency in cycles.
func NewLevel(name string, size, ways, lineSize int, latency uint64) *Level {
	if size%(ways*lineSize) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by ways*line", name, size))
	}
	sets := size / (ways * lineSize)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: sets %d not a power of two", name, sets))
	}
	lineBits := uint(0)
	for 1<<lineBits != lineSize {
		lineBits++
		if lineBits > 12 {
			panic("bad line size")
		}
	}
	l := &Level{
		name: name, sets: sets, ways: ways, lineBits: lineBits, latency: latency,
		tags:  make([][]uint64, sets),
		lru:   make([][]uint64, sets),
		valid: make([][]bool, sets),
	}
	for i := 0; i < sets; i++ {
		l.tags[i] = make([]uint64, ways)
		l.lru[i] = make([]uint64, ways)
		l.valid[i] = make([]bool, ways)
	}
	return l
}

// Name returns the level's label ("L1", …).
func (l *Level) Name() string { return l.name }

// Latency returns the hit latency in cycles.
func (l *Level) Latency() uint64 { return l.latency }

// lookup probes for addr and updates LRU on hit.
func (l *Level) lookup(addr uint64) bool {
	line := addr >> l.lineBits
	set := line & uint64(l.sets-1)
	l.stamp++
	for w := 0; w < l.ways; w++ {
		if l.valid[set][w] && l.tags[set][w] == line {
			l.lru[set][w] = l.stamp
			return true
		}
	}
	return false
}

// fill installs addr's line, evicting LRU.
func (l *Level) fill(addr uint64) {
	line := addr >> l.lineBits
	set := line & uint64(l.sets-1)
	victim := 0
	for w := 0; w < l.ways; w++ {
		if !l.valid[set][w] {
			victim = w
			break
		}
		if l.lru[set][w] < l.lru[set][victim] {
			victim = w
		}
	}
	l.stamp++
	l.tags[set][victim] = line
	l.valid[set][victim] = true
	l.lru[set][victim] = l.stamp
}

// Hierarchy is an inclusive multi-level cache hierarchy backed by a
// fixed-latency memory.
type Hierarchy struct {
	levels     []*Level
	memLatency uint64
	// MemAccesses counts accesses that reached memory.
	MemAccesses uint64
}

// Config describes a hierarchy to build.
type Config struct {
	LineSize   int
	MemLatency uint64
	Levels     []LevelConfig
}

// LevelConfig describes one level.
type LevelConfig struct {
	Name    string
	Size    int
	Ways    int
	Latency uint64
}

// XeonW2195 returns the paper evaluation machine's data-side geometry:
// 32 KiB L1D, 1 MiB L2, 24 MiB (shared, here private) L3.
func XeonW2195() Config {
	return Config{
		LineSize:   64,
		MemLatency: 220,
		Levels: []LevelConfig{
			{Name: "L1", Size: 32 << 10, Ways: 8, Latency: 4},
			{Name: "L2", Size: 1 << 20, Ways: 16, Latency: 14},
			{Name: "L3", Size: 24 << 20, Ways: 12, Latency: 44},
		},
	}
}

// NeoverseN1 returns an N1-like geometry (64 KiB L1, 1 MiB L2, 8 MiB LLC).
func NeoverseN1() Config {
	return Config{
		LineSize:   64,
		MemLatency: 200,
		Levels: []LevelConfig{
			{Name: "L1", Size: 64 << 10, Ways: 4, Latency: 4},
			{Name: "L2", Size: 1 << 20, Ways: 8, Latency: 11},
			{Name: "L3", Size: 8 << 20, Ways: 16, Latency: 35},
		},
	}
}

// New builds a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{memLatency: cfg.MemLatency}
	for _, lc := range cfg.Levels {
		h.levels = append(h.levels, NewLevel(lc.Name, lc.Size, lc.Ways, cfg.LineSize, lc.Latency))
	}
	return h
}

// Access looks addr up, filling all levels on the way back (inclusive),
// and returns the access latency in cycles.
func (h *Hierarchy) Access(addr uint64) uint64 {
	for i, l := range h.levels {
		if l.lookup(addr) {
			l.Hits++
			// Fill the levels above the hit.
			for j := 0; j < i; j++ {
				h.levels[j].fill(addr)
			}
			return l.latency
		}
		l.Misses++
	}
	h.MemAccesses++
	for _, l := range h.levels {
		l.fill(addr)
	}
	return h.memLatency
}

// Prefetch pulls addr's line into every level without charging latency to
// the caller. It returns the latency the fill would have cost, which the
// pipeline model uses to decide when the line becomes usable.
func (h *Hierarchy) Prefetch(addr uint64) uint64 {
	// A prefetch is an access whose latency is hidden; tag state changes
	// identically.
	for i, l := range h.levels {
		if l.lookup(addr) {
			for j := 0; j < i; j++ {
				h.levels[j].fill(addr)
			}
			return l.latency
		}
	}
	h.MemAccesses++
	for _, l := range h.levels {
		l.fill(addr)
	}
	return h.memLatency
}

// Levels exposes the per-level stats.
func (h *Hierarchy) Levels() []*Level { return h.levels }

// MemLatency returns the backing memory latency in cycles.
func (h *Hierarchy) MemLatency() uint64 { return h.memLatency }

// Stats renders a one-line summary per level.
func (h *Hierarchy) Stats() string {
	s := ""
	for _, l := range h.levels {
		total := l.Hits + l.Misses
		rate := 0.0
		if total > 0 {
			rate = float64(l.Hits) / float64(total)
		}
		s += fmt.Sprintf("%s: %d/%d hits (%.1f%%)  ", l.name, l.Hits, total, 100*rate)
	}
	return s + fmt.Sprintf("mem: %d", h.MemAccesses)
}
