package cache

import (
	"testing"
	"testing/quick"
)

func small() *Hierarchy {
	return New(Config{
		LineSize:   64,
		MemLatency: 200,
		Levels: []LevelConfig{
			{Name: "L1", Size: 1 << 10, Ways: 2, Latency: 4},  // 8 sets
			{Name: "L2", Size: 8 << 10, Ways: 4, Latency: 12}, // 32 sets
		},
	})
}

func TestColdMissThenHit(t *testing.T) {
	h := small()
	if lat := h.Access(0x1000); lat != 200 {
		t.Errorf("cold access latency = %d, want 200", lat)
	}
	if lat := h.Access(0x1000); lat != 4 {
		t.Errorf("warm access latency = %d, want 4 (L1 hit)", lat)
	}
	if lat := h.Access(0x1008); lat != 4 {
		t.Errorf("same-line access latency = %d, want 4", lat)
	}
}

func TestLRUEviction(t *testing.T) {
	h := small()
	// L1: 8 sets, 2 ways, 64B lines. Addresses mapping to set 0 are
	// multiples of 64*8 = 512.
	h.Access(0 * 512) // miss, fills way 0
	h.Access(1 * 512) // miss, fills way 1
	h.Access(0 * 512) // hit, refreshes LRU of line 0
	h.Access(2 * 512) // evicts line 1 (LRU)
	if lat := h.Access(0 * 512); lat != 4 {
		t.Errorf("line 0 should still be in L1, lat = %d", lat)
	}
	if lat := h.Access(1 * 512); lat == 4 {
		t.Error("line 1 should have been evicted from L1")
	}
}

func TestL2BackstopsL1(t *testing.T) {
	h := small()
	// Fill set 0 of L1 beyond capacity; L2 (32 sets, 4 ways) keeps them.
	for i := 0; i < 4; i++ {
		h.Access(uint64(i) * 512)
	}
	// Lines 0,1 evicted from L1 but all 4 map to L2 sets 0/8/16/24 — all
	// distinct sets, so they are L2 hits.
	if lat := h.Access(0); lat != 12 {
		t.Errorf("expected L2 hit (12), got %d", lat)
	}
}

func TestPrefetchInstallsLine(t *testing.T) {
	h := small()
	if lat := h.Prefetch(0x4000); lat != 200 {
		t.Errorf("cold prefetch reported latency %d, want 200", lat)
	}
	if lat := h.Access(0x4000); lat != 4 {
		t.Errorf("access after prefetch = %d, want 4", lat)
	}
	// Prefetch must not count as a demand hit/miss.
	l1 := h.Levels()[0]
	if l1.Hits != 1 || l1.Misses != 0 {
		t.Errorf("L1 stats after prefetch+access: hits=%d misses=%d", l1.Hits, l1.Misses)
	}
}

func TestStatsAccounting(t *testing.T) {
	h := small()
	h.Access(0)
	h.Access(0)
	h.Access(64 * 8 * 32 * 4) // far line, cold miss
	l1 := h.Levels()[0]
	if l1.Hits != 1 || l1.Misses != 2 {
		t.Errorf("L1 hits=%d misses=%d, want 1/2", l1.Hits, l1.Misses)
	}
	if h.MemAccesses != 2 {
		t.Errorf("mem accesses = %d, want 2", h.MemAccesses)
	}
}

func TestWorkingSetFitsL1(t *testing.T) {
	h := small()
	// 1 KiB working set touched twice: second pass must be all L1 hits.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 1024; a += 64 {
			h.Access(a)
		}
	}
	l1 := h.Levels()[0]
	if l1.Hits != 16 || l1.Misses != 16 {
		t.Errorf("hits=%d misses=%d, want 16/16", l1.Hits, l1.Misses)
	}
}

func TestQuickHitAfterAccess(t *testing.T) {
	// Property: immediately re-accessing any address is an L1 hit.
	h := New(XeonW2195())
	f := func(addr uint64) bool {
		h.Access(addr)
		return h.Access(addr) == 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXeonConfigBuilds(t *testing.T) {
	h := New(XeonW2195())
	if len(h.Levels()) != 3 {
		t.Fatal("Xeon config should have 3 levels")
	}
	if h.MemLatency() != 220 {
		t.Error("mem latency wrong")
	}
}

func TestNeoverseConfigBuilds(t *testing.T) {
	h := New(NeoverseN1())
	if len(h.Levels()) != 3 {
		t.Fatal("N1 config should have 3 levels")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets should panic")
		}
	}()
	NewLevel("bad", 3*64*2, 2, 64, 1) // 3 sets
}
