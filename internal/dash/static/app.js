/* OptiWISE embedded dashboard: hash-routed SPA over the serve/cluster
 * JSON APIs. No frameworks, no build step — this file is embedded in
 * the binary and must run from file-server semantics alone. */
"use strict";

const view = document.getElementById("view");
let eventSource = null; // active SSE subscription, closed on route change
let pollTimer = null; // status-poll fallback when SSE is unavailable

function esc(s) {
  return String(s).replace(/[&<>"']/g, c => ({
    "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;", "'": "&#39;",
  }[c]));
}

function fmtInt(n) {
  return (n === undefined || n === null) ? "0" : Number(n).toLocaleString("en-US");
}

function fmtCPI(x) {
  return (x === undefined || x === null || !isFinite(x)) ? "-" : Number(x).toFixed(3);
}

function fmtDur(sec) {
  if (sec < 90) return sec.toFixed(0) + "s";
  if (sec < 5400) return (sec / 60).toFixed(1) + "m";
  return (sec / 3600).toFixed(1) + "h";
}

async function getJSON(url) {
  const r = await fetch(url);
  const body = await r.json().catch(() => ({}));
  if (!r.ok) throw new Error(body.error || (url + ": HTTP " + r.status));
  return body;
}

function stateBadge(st) {
  const cls = { done: "done", failed: "failed", canceled: "failed", running: "running" }[st.state] || "";
  let out = `<span class="badge ${cls}">${esc(st.state)}</span>`;
  if (st.degraded) out += ` <span class="badge degraded">degraded</span>`;
  if (st.cached) out += ` <span class="badge">cached</span>`;
  if (st.coalesced) out += ` <span class="badge">coalesced</span>`;
  if (st.peer_fetched) out += ` <span class="badge">peer-fetched</span>`;
  return out;
}

function closeES() {
  if (eventSource) { eventSource.close(); eventSource = null; }
  if (pollTimer) { clearInterval(pollTimer); pollTimer = null; }
}

/* ---------- jobs list ---------- */

async function renderJobs() {
  let jobs;
  try { jobs = (await getJSON("/api/v1/jobs")).jobs || []; }
  catch (e) { view.innerHTML = `<p class="err">${esc(e.message)}</p>`; return; }
  // Lineage regression badges: one stats probe answers how many
  // regressions the node has seen; per-lineage diffs load on the job
  // page itself.
  let rows = jobs.map(j => `
    <tr class="row">
      <td><a href="#/jobs/${esc(j.id)}">${esc(j.id.slice(0, 12))}</a></td>
      <td>${esc(j.module || "")}</td>
      <td>${stateBadge(j)}</td>
      <td>${j.lineage ? `<a href="#/jobs/${esc(j.id)}">${esc(j.lineage)}</a>` : ""}</td>
      <td class="num">${j.duration_ms != null ? fmtInt(j.duration_ms) + " ms" : ""}</td>
      <td class="srcloc">${esc(j.trace_id || "")}</td>
    </tr>`).join("");
  view.innerHTML = `
    <div class="panel"><h2>Jobs (newest first)</h2>
    <table>
      <tr><th>id</th><th>module</th><th>state</th><th>lineage</th><th class="num">duration</th><th>trace</th></tr>
      ${rows || `<tr><td colspan="6" class="muted">no jobs submitted yet</td></tr>`}
    </table></div>`;
}

/* ---------- job detail: drill-down ---------- */

function instRows(insts) {
  return (insts || []).map(i => `
    <tr class="row">
      <td>0x${Number(i.offset).toString(16)}</td>
      <td class="disasm">${esc(i.disasm)}${i.estimated ? ' <span class="badge estimated">~</span>' : ""}</td>
      <td class="srcloc">${i.file ? esc(i.file) + ":" + i.line : ""}</td>
      <td class="num">${fmtInt(i.exec_count)}</td>
      <td class="num">${fmtInt(i.cycles)}</td>
      <td class="num cpi">${fmtCPI(i.cpi)}</td>
    </tr>`).join("");
}

function blockDetails(b) {
  return `<details>
    <summary>block 0x${Number(b.start).toString(16)}–0x${Number(b.end).toString(16)}
      · exec ${fmtInt(b.exec_count)} · CPI <span class="cpi">${fmtCPI(b.cpi)}</span>
      · ${(100 * (b.time_frac || 0)).toFixed(1)}% time</summary>
    <table>
      <tr><th>offset</th><th>instruction</th><th>source</th><th class="num">exec</th><th class="num">cycles</th><th class="num">CPI</th></tr>
      ${instRows(b.instructions)}
    </table>
  </details>`;
}

function loopDetails(l) {
  const src = l.file ? ` · ${esc(l.file)}:${l.start_line}–${l.end_line}` : "";
  return `<details>
    <summary>loop #${l.id} @0x${Number(l.header_offset).toString(16)} depth ${l.depth}
      · ${fmtInt(l.iterations)} iter · CPI <span class="cpi">${fmtCPI(l.cpi)}</span>
      · ${(100 * (l.time_frac || 0)).toFixed(1)}% time${src}</summary>
    ${(l.blocks || []).map(blockDetails).join("")}
  </details>`;
}

function funcDetails(f, totalCycles) {
  const frac = totalCycles ? f.total_cycles / totalCycles : 0;
  return `<details>
    <summary><span class="bar" style="width:${(120 * frac).toFixed(0)}px"></span>
      ${esc(f.name)}${f.estimated ? ' <span class="badge estimated">~</span>' : ""}
      · CPI <span class="cpi">${fmtCPI(f.cpi)}</span>
      · ${(100 * (f.time_frac || 0)).toFixed(1)}% time
      · ${fmtInt(f.self_insts)} insts</summary>
    ${(f.loops || []).map(loopDetails).join("")}
    ${(f.blocks || []).map(blockDetails).join("")}
  </details>`;
}

function phaseChart(dd) {
  const ivs = dd.intervals || [];
  if (!ivs.length) return "";
  const W = 1100, H = 110, n = ivs.length, bw = Math.max(1, W / n);
  let maxIPC = 0;
  for (const iv of ivs) maxIPC = Math.max(maxIPC, iv.ipc || 0);
  if (maxIPC <= 0) maxIPC = 1;
  const bars = ivs.map((iv, i) => {
    const h = Math.max(1, (iv.ipc / maxIPC) * (H - 10));
    return `<rect x="${(i * bw).toFixed(1)}" y="${(H - h).toFixed(1)}" width="${Math.max(bw - 0.5, 0.5).toFixed(1)}" height="${h.toFixed(1)}" fill="#5ab0f7"><title>window @${iv.start}: IPC ${(iv.ipc || 0).toFixed(2)}, dominant stall ${esc(iv.stalls && iv.stalls.dominant || "")}</title></rect>`;
  }).join("");
  const phases = (dd.phases || []).map(p => `
    <tr class="row"><td>${esc(p.dominant)}</td>
    <td class="num">${fmtInt(p.start_cycle)}–${fmtInt(p.end_cycle)}</td>
    <td class="num">${fmtInt(p.cycles)}</td><td class="num">${fmtInt(p.insts)}</td>
    <td class="num">${(p.ipc || 0).toFixed(2)}</td></tr>`).join("");
  return `<div class="panel"><h2>Telemetry windows (IPC, window=${fmtInt(dd.interval_window)})</h2>
    <svg class="chart" viewBox="0 0 ${W} ${H}" preserveAspectRatio="none">${bars}</svg>
    <table><tr><th>dominant stall</th><th class="num">cycle range</th><th class="num">cycles</th><th class="num">insts</th><th class="num">IPC</th></tr>${phases}</table>
    </div>`;
}

async function renderJob(id) {
  view.innerHTML = `<div class="panel"><h2>Job ${esc(id.slice(0, 12))}</h2><div id="jobstatus" class="muted">loading…</div></div><div id="jobbody"></div>`;
  const statusEl = document.getElementById("jobstatus");
  const bodyEl = document.getElementById("jobbody");

  const showStatus = st => {
    statusEl.innerHTML = `${stateBadge(st)} · module ${esc(st.module || "")}
      · machine ${esc(st.machine || "")} · retries ${st.retries || 0}
      ${st.error ? `<div class="err">${esc(st.error)}</div>` : ""}
      <div class="srcloc">trace ${esc(st.trace_id || "")}
      · <a href="/api/v1/jobs/${esc(id)}/trace">stitched trace JSON</a>
      · <a href="/api/v1/jobs/${esc(id)}/report?kind=full">report</a></div>`;
  };

  const loadDone = async st => {
    if (st.state === "failed" || st.state === "canceled") {
      let dumps = [];
      try { dumps = (await getJSON("/debug/flightrecorder")).dumps || []; } catch (e) { /* no recorder */ }
      const linked = dumps.filter(d => !st.trace_id || !d.trace_id || d.trace_id === st.trace_id);
      bodyEl.innerHTML = `<div class="panel"><h2>Flight-recorder dumps</h2>
        ${linked.length ? `<table><tr><th>id</th><th>taken</th><th>trigger</th><th class="num">records</th></tr>` +
          linked.map(d => `<tr class="row"><td><a href="/debug/flightrecorder/${d.id}">#${d.id}</a></td>
            <td>${esc(d.taken_at)}</td><td>${esc(d.reason)}</td><td class="num">${fmtInt(d.records)}</td></tr>`).join("") + "</table>"
          : `<p class="muted">no retained dumps reference this job</p>`}</div>`;
      return;
    }
    if (st.state !== "done") return;
    let dd;
    try { dd = await getJSON(`/api/v1/jobs/${encodeURIComponent(id)}/drilldown`); }
    catch (e) { bodyEl.innerHTML = `<p class="err">${esc(e.message)}</p>`; return; }
    const notes = [dd.degraded_note, dd.tiered_note].filter(Boolean)
      .map(n => `<p class="badge degraded">${esc(n)}</p>`).join("");
    bodyEl.innerHTML = `
      <div class="panel"><h2>Result</h2>
        ${notes}
        <p>${fmtInt(dd.total_cycles)} cycles · ${fmtInt(dd.total_insts)} instructions
          · IPC ${(dd.ipc || 0).toFixed(3)} · CPI <span class="cpi">${fmtCPI(dd.cpi)}</span></p>
      </div>
      ${phaseChart(dd)}
      <div class="panel"><h2>Drill-down (function → loop → block → instruction)</h2>
        ${(dd.functions || []).map(f => funcDetails(f, dd.total_cycles)).join("") || '<p class="muted">no functions</p>'}
      </div>`;
  };

  try {
    const st = await getJSON(`/api/v1/jobs/${encodeURIComponent(id)}`);
    showStatus(st);
    if (st.state === "done" || st.state === "failed" || st.state === "canceled") {
      await loadDone(st);
      return;
    }
    // Live job: subscribe to SSE pushes instead of polling.
    eventSource = new EventSource(`/api/v1/jobs/${encodeURIComponent(id)}/events`);
    eventSource.addEventListener("status", ev => showStatus(JSON.parse(ev.data)));
    eventSource.addEventListener("windows", ev => {
      const snap = JSON.parse(ev.data);
      bodyEl.innerHTML = `<div class="panel"><h2>Streamed windows (live)</h2>
        <p>${fmtInt(snap.cycles)} cycles · ${fmtInt(snap.instructions)} instructions
          · IPC ${(snap.ipc || 0).toFixed(3)}
          · ${(snap.sample_windows || []).length} sample windows
          · ${(snap.edge_windows || []).length} edge windows</p></div>`;
    });
    eventSource.addEventListener("done", async ev => {
      const st = JSON.parse(ev.data);
      closeES();
      showStatus(st);
      await loadDone(st);
    });
    // SSE is node-local; when this frontend is not the job's owner the
    // stream 404s, so fall back to polling the proxied status.
    eventSource.onerror = () => {
      closeES();
      const poll = setInterval(async () => {
        try {
          const st = await getJSON(`/api/v1/jobs/${encodeURIComponent(id)}`);
          showStatus(st);
          if (st.state === "done" || st.state === "failed" || st.state === "canceled") {
            clearInterval(poll);
            await loadDone(st);
          }
        } catch (e) {
          clearInterval(poll);
          statusEl.innerHTML = `<p class="err">${esc(e.message)}</p>`;
        }
      }, 2000);
      pollTimer = poll;
    };
  } catch (e) {
    statusEl.innerHTML = `<p class="err">${esc(e.message)}</p>`;
  }
}

/* ---------- cluster view ---------- */

function counterOf(snap, name) {
  return (snap && snap.counters && snap.counters[name]) || 0;
}
function gaugeOf(snap, name) {
  return (snap && snap.gauges && snap.gauges[name]) || 0;
}

async function renderCluster() {
  let stats = null, fed = null, owload = null;
  try { stats = await getJSON("/api/v1/stats"); } catch (e) { /* keep nulls */ }
  try { fed = await getJSON("/cluster/v1/metrics?format=json"); } catch (e) { /* single node */ }
  try { owload = await getJSON("/api/v1/owload"); } catch (e) { /* none pushed */ }

  let ringHTML = "";
  if (stats && stats.cluster) {
    const c = stats.cluster;
    ringHTML = `<div class="panel"><h2>Ring</h2>
      <p>self ${esc(c.self)} · role ${esc(c.role)} · ring size ${c.ring_size}
      · live ${c.peers_live} · suspect ${c.peers_suspect} · dead ${c.peers_dead}</p>
      <p class="muted">forwarded ${fmtInt(c.forwarded)} (failovers ${fmtInt(c.forward_failovers)})
      · peer-fetch hits ${fmtInt(c.peer_fetch_hits)} / misses ${fmtInt(c.peer_fetch_misses)}
      · served to peers ${fmtInt(c.peer_results_served)}
      · replications ${fmtInt(c.replications)}
      · anti-entropy repairs ${fmtInt(c.antientropy_repairs)}</p></div>`;
  }

  let nodesHTML = "";
  if (fed && fed.nodes) {
    const rows = fed.nodes.map(n => {
      const s = n.snapshot || {};
      return `<tr class="row">
        <td>${esc(n.node)}${n.stale ? ' <span class="badge stale">stale</span>' : ""}</td>
        <td class="num">${fmtInt(gaugeOf(s, "optiwise_serve_queue_depth"))}</td>
        <td class="num">${fmtInt(gaugeOf(s, "optiwise_serve_inflight_jobs"))}</td>
        <td class="num">${fmtInt(counterOf(s, "optiwise_serve_jobs_completed_total"))}</td>
        <td class="num">${fmtInt(counterOf(s, "optiwise_serve_cache_hits_total"))}</td>
        <td class="num">${fmtInt(counterOf(s, "optiwise_cluster_peer_fetch_hits_total"))}</td>
        <td class="num">${fmtInt(counterOf(s, "optiwise_cluster_replications_total"))}</td>
        <td class="num">${s.uptime_seconds ? fmtDur(s.uptime_seconds) : "-"}</td>
      </tr>`;
    }).join("");
    nodesHTML = `<div class="panel"><h2>Nodes (federated)</h2>
      <table><tr><th>node</th><th class="num">queue</th><th class="num">inflight</th>
      <th class="num">completed</th><th class="num">cache hits</th>
      <th class="num">peer fetches</th><th class="num">replications</th><th class="num">uptime</th></tr>
      ${rows}</table>
      <p class="muted"><a href="/cluster/v1/metrics">Prometheus exposition</a></p></div>`;
  } else {
    nodesHTML = `<div class="panel"><h2>Nodes</h2>
      <p class="muted">federated metrics unavailable (single-node server, or the cluster layer is not running)</p></div>`;
  }

  let owloadHTML = "";
  if (owload && owload.run) {
    const r = owload.run;
    const lat = r.latency_ms || {};
    const nodeRows = (r.nodes || []).map(n => `<tr class="row">
      <td>${esc(n.addr)}</td><td class="num">${fmtInt(n.jobs)}</td>
      <td class="num">${fmtInt(n.forwarded)}</td>
      <td class="num">${fmtInt(n.peer_fetch_hits)}</td></tr>`).join("");
    owloadHTML = `<div class="panel"><h2>Last owload run (${esc(owload.received_at)})</h2>
      <p>${esc(r.label || "run")} · ${fmtInt(r.jobs_done)} done / ${fmtInt(r.jobs_failed)} failed / ${fmtInt(r.rejected)} rejected
      · ${(r.throughput_jobs_per_sec || 0).toFixed(1)} jobs/s</p>
      <p class="muted">latency p50 ${(lat.p50 || 0).toFixed(1)}ms · p90 ${(lat.p90 || 0).toFixed(1)}ms
      · p99 ${(lat.p99 || 0).toFixed(1)}ms · max ${(lat.max || 0).toFixed(1)}ms</p>
      ${nodeRows ? `<table><tr><th>node</th><th class="num">jobs</th><th class="num">forwarded</th><th class="num">peer fetches</th></tr>${nodeRows}</table>` : ""}
      </div>`;
  }

  view.innerHTML = (ringHTML + nodesHTML + owloadHTML) ||
    `<p class="err">stats unavailable</p>`;

  // Live refresh: the stats SSE channel repaints the ring panel.
  eventSource = new EventSource("/api/v1/stats/events");
  let last = 0;
  eventSource.addEventListener("stats", () => {
    const now = Date.now();
    if (now - last > 4000 && location.hash.startsWith("#/cluster")) {
      last = now;
      closeES();
      renderCluster();
    }
  });
}

/* ---------- flight recorder ---------- */

async function renderFlight() {
  let dumps;
  try { dumps = (await getJSON("/debug/flightrecorder")).dumps || []; }
  catch (e) { view.innerHTML = `<p class="err">${esc(e.message)}</p>`; return; }
  const rows = dumps.map(d => `<tr class="row">
    <td><a href="/debug/flightrecorder/${d.id}">#${d.id}</a></td>
    <td>${esc(d.taken_at)}</td><td>${esc(d.reason)}</td>
    <td class="srcloc">${esc(d.trace_id || "")}</td>
    <td class="num">${fmtInt(d.records)}</td></tr>`).join("");
  view.innerHTML = `<div class="panel"><h2>Retained flight dumps (newest first)</h2>
    <table><tr><th>id</th><th>taken</th><th>trigger</th><th>trace</th><th class="num">records</th></tr>
    ${rows || `<tr><td colspan="5" class="muted">no dumps retained — POST /debug/flightrecorder/dump takes one</td></tr>`}
    </table></div>`;
}

/* ---------- header + routing ---------- */

async function renderHeader() {
  try {
    const st = await getJSON("/api/v1/stats");
    const b = st.build || {};
    document.getElementById("buildinfo").textContent =
      `${b.version || "dev"} · ${b.go_version || ""} · ${(b.commit || "").slice(0, 12)} · up ${fmtDur(st.uptime_seconds || 0)}`;
  } catch (e) { /* header is decorative */ }
}

function route() {
  closeES();
  const hash = location.hash || "#/jobs";
  for (const id of ["nav-jobs", "nav-cluster", "nav-flight"]) {
    document.getElementById(id).classList.remove("active");
  }
  const m = hash.match(/^#\/jobs\/(.+)$/);
  if (m) {
    document.getElementById("nav-jobs").classList.add("active");
    renderJob(decodeURIComponent(m[1]));
  } else if (hash.startsWith("#/cluster")) {
    document.getElementById("nav-cluster").classList.add("active");
    renderCluster();
  } else if (hash.startsWith("#/flight")) {
    document.getElementById("nav-flight").classList.add("active");
    renderFlight();
  } else {
    document.getElementById("nav-jobs").classList.add("active");
    renderJobs();
  }
}

window.addEventListener("hashchange", route);
renderHeader();
route();
