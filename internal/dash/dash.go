// Package dash embeds the zero-dependency single-page dashboard served
// at /ui/: static HTML/JS/CSS compiled into the binary with go:embed,
// talking to the serve layer's JSON APIs (job list, drill-down
// projection, SSE push channels) and the cluster layer's federated
// metrics and stitched traces. No build step, no external assets: the
// dashboard works on an air-gapped profiling host exactly as it does
// in CI.
package dash

import (
	"embed"
	"io/fs"
	"net/http"
)

//go:embed static
var staticFS embed.FS

// Handler serves the dashboard under /ui/. The index is served for
// /ui/ itself; asset paths map straight into the embedded tree.
func Handler() http.Handler {
	sub, err := fs.Sub(staticFS, "static")
	if err != nil {
		// Unreachable: the embed directive guarantees the directory.
		panic(err)
	}
	return http.StripPrefix("/ui/", http.FileServer(http.FS(sub)))
}
