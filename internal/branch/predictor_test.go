package branch

import "testing"

func TestGshareLearnsAlwaysTaken(t *testing.T) {
	g := NewGshare(12, 8)
	pc := uint64(0x400100)
	for i := 0; i < 16; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Error("gshare failed to learn always-taken")
	}
}

func TestGshareLearnsAlwaysNotTaken(t *testing.T) {
	g := NewGshare(12, 8)
	pc := uint64(0x400100)
	for i := 0; i < 16; i++ {
		g.Update(pc, false)
	}
	if g.Predict(pc) {
		t.Error("gshare failed to learn never-taken")
	}
}

func TestGshareLearnsAlternatingPattern(t *testing.T) {
	// With global history, a strict T,N,T,N pattern becomes predictable.
	g := NewGshare(14, 10)
	pc := uint64(0x400200)
	taken := false
	// Train.
	for i := 0; i < 4000; i++ {
		g.Update(pc, taken)
		taken = !taken
	}
	// Measure.
	correct := 0
	for i := 0; i < 1000; i++ {
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if correct < 950 {
		t.Errorf("gshare on alternating pattern: %d/1000 correct", correct)
	}
}

func TestBimodalCannotLearnAlternating(t *testing.T) {
	// The history-free ablation predictor should do poorly on T,N,T,N —
	// this is the behavioural difference the ablation bench reports.
	b := NewBimodal(12)
	pc := uint64(0x400200)
	taken := false
	for i := 0; i < 2000; i++ {
		b.Update(pc, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 1000; i++ {
		if b.Predict(pc) == taken {
			correct++
		}
		b.Update(pc, taken)
		taken = !taken
	}
	if correct > 700 {
		t.Errorf("bimodal unexpectedly good on alternating pattern: %d/1000", correct)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(12)
	pc := uint64(0x88)
	for i := 0; i < 8; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal failed on biased branch")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(10)
	if _, ok := b.Predict(0x400000); ok {
		t.Error("empty BTB should miss")
	}
	b.Update(0x400000, 0x401000)
	if tgt, ok := b.Predict(0x400000); !ok || tgt != 0x401000 {
		t.Errorf("BTB predict = %#x, %v", tgt, ok)
	}
	// Aliasing entry evicts.
	alias := uint64(0x400000 + 4*(1<<10))
	b.Update(alias, 0x999)
	if _, ok := b.Predict(0x400000); ok {
		t.Error("aliased entry should have been evicted")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for _, want := range []uint64{3, 2, 1} {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS should report underflow")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // evicts 1
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("got %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("got %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Error("entry 1 should have been evicted")
	}
}
