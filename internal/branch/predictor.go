// Package branch implements the branch prediction structures of the
// out-of-order pipeline simulator: a gshare direction predictor, a
// branch target buffer for indirect targets, and a return address stack.
//
// Prediction quality matters to the reproduction because the paper's mcf
// case study (§VI-A) turns on data-dependent comparator branches being
// frequently mispredicted — the profile must show those branches as
// expensive, and the cmov rewrite must remove that cost.
package branch

// Outcome describes one resolved branch for predictor training.
type Outcome struct {
	PC     uint64
	Taken  bool
	Target uint64
}

// DirectionPredictor predicts taken/not-taken for conditional branches.
type DirectionPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
}

// Gshare is the classic global-history XOR-indexed two-bit-counter
// predictor.
type Gshare struct {
	historyBits uint
	history     uint64
	table       []uint8 // 2-bit saturating counters, initialized weakly taken
}

// NewGshare returns a gshare predictor with 2^tableBits counters and the
// given history length.
func NewGshare(tableBits, historyBits uint) *Gshare {
	g := &Gshare{
		historyBits: historyBits,
		table:       make([]uint8, 1<<tableBits),
	}
	for i := range g.table {
		g.table[i] = 2 // weakly taken
	}
	return g
}

func (g *Gshare) index(pc uint64) uint64 {
	h := g.history & ((1 << g.historyBits) - 1)
	return ((pc >> 2) ^ h) & uint64(len(g.table)-1)
}

// Predict implements DirectionPredictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)] >= 2 }

// Update implements DirectionPredictor. It also shifts the new outcome
// into the global history.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
	g.history = g.history<<1 | b2u(taken)
}

// Bimodal is a PC-indexed two-bit-counter predictor without history, used
// as an ablation baseline.
type Bimodal struct {
	table []uint8
}

// NewBimodal returns a bimodal predictor with 2^tableBits counters.
func NewBimodal(tableBits uint) *Bimodal {
	b := &Bimodal{table: make([]uint8, 1<<tableBits)}
	for i := range b.table {
		b.table[i] = 2
	}
	return b
}

func (b *Bimodal) index(pc uint64) uint64 {
	return (pc >> 2) & uint64(len(b.table)-1)
}

// Predict implements DirectionPredictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)] >= 2 }

// Update implements DirectionPredictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	if taken {
		if b.table[i] < 3 {
			b.table[i]++
		}
	} else if b.table[i] > 0 {
		b.table[i]--
	}
}

// BTB is a direct-mapped branch target buffer predicting targets of
// indirect jumps and calls.
type BTB struct {
	tags    []uint64
	targets []uint64
	valid   []bool
}

// NewBTB returns a BTB with 2^bits entries.
func NewBTB(bits uint) *BTB {
	n := 1 << bits
	return &BTB{
		tags:    make([]uint64, n),
		targets: make([]uint64, n),
		valid:   make([]bool, n),
	}
}

func (b *BTB) index(pc uint64) uint64 { return (pc >> 2) & uint64(len(b.tags)-1) }

// Predict returns the predicted target for the control transfer at pc.
// It reports false on a BTB miss.
func (b *BTB) Predict(pc uint64) (uint64, bool) {
	i := b.index(pc)
	if !b.valid[i] || b.tags[i] != pc {
		return 0, false
	}
	return b.targets[i], true
}

// Update installs the actual target.
func (b *BTB) Update(pc, target uint64) {
	i := b.index(pc)
	b.tags[i], b.targets[i], b.valid[i] = pc, target, true
}

// RAS is a fixed-depth return address stack. Overflow wraps (oldest entry
// is lost), underflow mispredicts — matching hardware behaviour.
type RAS struct {
	stack []uint64
	top   int // number of live entries, capped at len(stack)
}

// NewRAS returns a return-address stack with the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{stack: make([]uint64, depth)}
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	copy(r.stack[1:], r.stack[:len(r.stack)-1])
	r.stack[0] = addr
	if r.top < len(r.stack) {
		r.top++
	}
}

// Pop predicts the target of a return. It reports false when empty.
func (r *RAS) Pop() (uint64, bool) {
	if r.top == 0 {
		return 0, false
	}
	addr := r.stack[0]
	copy(r.stack, r.stack[1:])
	r.top--
	return addr, true
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
