package fault

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// install swaps in a plan for one test and restores the previous
// global afterwards so tests can run in any order.
func install(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	prev := Set(p)
	t.Cleanup(func() { Set(prev) })
	return p
}

func TestDisabledIsInert(t *testing.T) {
	prev := Set(nil)
	t.Cleanup(func() { Set(prev) })
	if Enabled() {
		t.Fatal("Enabled() with no plan")
	}
	if err := Err("anything"); err != nil {
		t.Fatalf("Err on disabled registry: %v", err)
	}
	data := []byte("hello")
	if got := Bytes("anything", data); &got[0] != &data[0] {
		t.Fatal("Bytes copied data on the disabled path")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"siteonly",              // no action
		"s:explode",             // unknown action
		"s:error:p=2",           // probability out of range
		"s:error:p=nope",        // non-numeric
		"s:error:frob=1",        // unknown param
		"s:corrupt:n=0",         // n below 1
		"seed=zebra",            // bad seed
		"s:latency:d=fortnight", // bad duration
		"s:error:msg",           // param without =, not perm
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) = nil error, want failure", spec)
		}
	}
}

func TestNthTrigger(t *testing.T) {
	install(t, "s:error:nth=3,msg=boom")
	for i := 1; i <= 5; i++ {
		err := Err("s")
		if (i == 3) != (err != nil) {
			t.Fatalf("call %d: err=%v", i, err)
		}
		if i == 3 {
			var fe *Error
			if !errors.As(err, &fe) || fe.Site != "s" || fe.Msg != "boom" || !fe.Transient {
				t.Fatalf("typed error mismatch: %#v", err)
			}
			if !IsTransient(err) {
				t.Fatal("nth error should default to transient")
			}
		}
	}
}

func TestEveryAfterCountPerm(t *testing.T) {
	install(t, "s:error:every=2,after=1,count=2,perm")
	var hits []int
	for i := 1; i <= 10; i++ {
		if err := Err("s"); err != nil {
			hits = append(hits, i)
			if IsTransient(err) {
				t.Fatal("perm error classified transient")
			}
		}
	}
	// after=1 skips call 1; every=2 fires on calls where (calls-1)%2==0,
	// i.e. calls 3,5,...; count=2 stops after two fires.
	if fmt.Sprint(hits) != "[3 5]" {
		t.Fatalf("fires at %v, want [3 5]", hits)
	}
}

func TestProbabilityDeterministicAcrossRuns(t *testing.T) {
	run := func() []int {
		p, err := Parse("seed=7;s:error:p=0.5")
		if err != nil {
			t.Fatal(err)
		}
		prev := Set(p)
		defer Set(prev)
		var hits []int
		for i := 0; i < 64; i++ {
			if Err("s") != nil {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different fire schedule:\n%v\n%v", a, b)
	}
	if len(a) < 16 || len(a) > 48 {
		t.Fatalf("p=0.5 fired %d/64 times; PRNG looks broken", len(a))
	}

	// A different seed should give a different schedule.
	p2, _ := Parse("seed=8;s:error:p=0.5")
	prev := Set(p2)
	defer Set(prev)
	var c []int
	for i := 0; i < 64; i++ {
		if Err("s") != nil {
			c = append(c, i)
		}
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPanicAction(t *testing.T) {
	install(t, "s:panic:nth=1,msg=kaboom")
	defer func() {
		v := recover()
		pv, ok := v.(*PanicValue)
		if !ok || pv.Site != "s" || pv.Msg != "kaboom" {
			t.Fatalf("recovered %#v, want *PanicValue{s, kaboom}", v)
		}
	}()
	Err("s")
	t.Fatal("panic rule did not panic")
}

func TestLatencyAction(t *testing.T) {
	install(t, "s:latency:nth=1,d=30ms")
	start := time.Now()
	if err := Err("s"); err != nil {
		t.Fatalf("latency returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency rule slept %v, want ~30ms", d)
	}
}

func TestCorruptBytesDeterministic(t *testing.T) {
	data := []byte(strings.Repeat("abcdefgh", 8))
	flip := func(seed uint64) []byte {
		p, err := Parse(fmt.Sprintf("seed=%d;s:corrupt:n=3,nth=1", seed))
		if err != nil {
			t.Fatal(err)
		}
		prev := Set(p)
		defer Set(prev)
		return Bytes("s", data)
	}
	a, b := flip(1), flip(1)
	if string(a) != string(b) {
		t.Fatal("same seed corrupted differently")
	}
	if string(a) == string(data) {
		t.Fatal("corrupt rule did not change the payload")
	}
	if string(data) != strings.Repeat("abcdefgh", 8) {
		t.Fatal("Bytes mutated the caller's buffer")
	}
	if string(flip(2)) == string(a) {
		t.Fatal("different seeds corrupted identically")
	}
	// Err must skip corrupt rules entirely.
	install(t, "s:corrupt:n=1")
	if err := Err("s"); err != nil {
		t.Fatalf("Err fired a corrupt rule: %v", err)
	}
}

func TestActivateAndEnsureSpec(t *testing.T) {
	prev := Set(nil)
	t.Cleanup(func() { Set(prev) })

	if err := Activate(" "); err != nil || Enabled() {
		t.Fatalf("blank Activate: err=%v enabled=%v", err, Enabled())
	}
	if err := EnsureSpec(""); err != nil {
		t.Fatalf("empty EnsureSpec: %v", err)
	}
	if err := EnsureSpec("s:error:nth=1"); err != nil || !Enabled() {
		t.Fatalf("EnsureSpec install: err=%v enabled=%v", err, Enabled())
	}
	if err := EnsureSpec("s:error:nth=1"); err != nil {
		t.Fatalf("EnsureSpec same spec: %v", err)
	}
	if err := EnsureSpec("s:error:nth=2"); err == nil {
		t.Fatal("EnsureSpec silently replaced a different active plan")
	}
	if err := Activate(""); err != nil || Enabled() {
		t.Fatalf("Activate(\"\") should disable: err=%v enabled=%v", err, Enabled())
	}
}

func TestActivateFromEnv(t *testing.T) {
	prev := Set(nil)
	t.Cleanup(func() { Set(prev) })
	t.Setenv(EnvVar, "s:error:nth=1,msg=envy")
	if err := ActivateFromEnv(); err != nil {
		t.Fatal(err)
	}
	err := Err("s")
	var fe *Error
	if !errors.As(err, &fe) || fe.Msg != "envy" {
		t.Fatalf("env-activated plan did not fire: %v", err)
	}
	t.Setenv(EnvVar, "not-a-spec")
	if err := ActivateFromEnv(); err == nil {
		t.Fatal("bad env spec accepted")
	}
}

func TestFiredCounter(t *testing.T) {
	p := install(t, "s:error:every=1;t:latency:nth=1,d=0s")
	for i := 0; i < 3; i++ {
		Err("s")
	}
	Err("t")
	if got := p.Fired(); got != 4 {
		t.Fatalf("Fired() = %d, want 4", got)
	}
}

func TestUnrelatedSiteUntouched(t *testing.T) {
	install(t, "s:error:every=1")
	if err := Err("other"); err != nil {
		t.Fatalf("unregistered site fired: %v", err)
	}
	data := []byte("x")
	if got := Bytes("other", data); &got[0] != &data[0] {
		t.Fatal("Bytes copied for an unregistered site")
	}
}

func BenchmarkErrDisabled(b *testing.B) {
	prev := Set(nil)
	b.Cleanup(func() { Set(prev) })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Err(SiteOOORun) != nil {
			b.Fatal("fired")
		}
	}
}
