// Package fault is a deterministic, seeded fault-injection registry.
//
// OptiWISE results need *two* independent profiles (sampling and DBI
// instrumentation), which doubles the production failure surface:
// either pass can fail, hang, panic, or hand back a corrupt profile.
// The serve stack must therefore fail *partially*, not totally — and
// the only way to trust that property is to exercise it continuously.
// This package provides named injection sites threaded through every
// seam of the pipeline (run loops, profile serialization, the serve
// cache and workers, report rendering) so a chaos harness can schedule
// reproducible failures against the real code paths.
//
// # Always compiled in, free when off
//
// Like the obs layer, call sites are unconditional in the source but
// gate on a single atomic pointer load at run time: when no Plan is
// installed, Enabled() is false, Err() returns nil, and Bytes()
// returns its input unchanged. Hot loops hoist Enabled() once per run
// and fold the check into their existing cancellation-poll countdown
// branch, so the disabled path costs nothing measurable (the benchgate
// CI job enforces this against bench/baseline.json).
//
// # Determinism
//
// Every rule owns an independent splitmix64 stream seeded from the
// plan seed XOR a hash of its site name and rule index, plus its own
// call/fire counters. Two runs of the same workload against the same
// spec therefore fire identically, per site, regardless of how other
// sites interleave — which is what makes the chaos suite's
// replay-determinism assertion possible.
//
// # Spec grammar
//
//	spec  = clause *( ";" clause )
//	clause = "seed=" N | site ":" action [ ":" params ]
//	params = param *( "," param )
//	action = "error" | "panic" | "latency" | "corrupt"
//	param  = "p=" float        probability per call
//	       | "nth=" N          fire only on the Nth call (1-based)
//	       | "every=" N        fire every Nth call
//	       | "after=" N        skip the first N calls
//	       | "count=" N        stop after N fires
//	       | "msg=" text       error/panic message
//	       | "d=" duration     latency to inject (latency action)
//	       | "n=" N            bytes to flip (corrupt action)
//	       | "perm"            classify the error as permanent
//
// Example:
//
//	seed=42;dbi.run:error:p=0.3;sampler.write:corrupt:n=4,nth=2
//
// With no trigger param the rule fires on every call. Errors are
// transient by default (retryable by the serve layer) unless marked
// perm.
package fault

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"optiwise/internal/obs"
)

// Canonical site names. Keeping them in one place documents the full
// injection surface and guards against typos in specs and tests.
const (
	SiteOOORun       = "ooo.run"       // sampling simulator cycle loop
	SiteInterpRun    = "interp.run"    // functional interpreter step loop
	SiteDBIRun       = "dbi.run"       // DBI engine block loop
	SiteSamplerWrite = "sampler.write" // sample-profile serialization
	SiteSamplerRead  = "sampler.read"  // sample-profile deserialization
	SiteDBIWrite     = "dbi.write"     // edge-profile serialization
	SiteDBIRead      = "dbi.read"      // edge-profile deserialization
	SiteCacheGet     = "serve.cache.get"
	SiteCachePut     = "serve.cache.put"
	SiteWorker       = "serve.worker" // worker job execution
	SiteReport       = "report.render"
	SiteCombine      = "core.combine"
	// SiteTieredSelect sits between the sampling pass and the selective
	// DBI pass of a tiered run (DESIGN.md §12): the seam where the
	// hotness selection is derived from the sampling profile. A fault
	// here models a tiered pipeline that sampled successfully but could
	// not start its instrumentation stage.
	SiteTieredSelect = "tiered.select"

	// Cluster seams (internal/cluster): the multi-node layer's network
	// surface. Error rules on probe model a network partition (the node
	// looks dead to its peers); error/latency rules on forward and
	// peer-fetch model lossy or slow links between frontends and
	// workers; corrupt rules on peer-fetch flip bytes of the fetched
	// result payload, which the checksum must catch before the payload
	// can poison a local cache.
	SiteClusterProbe     = "cluster.probe"      // membership health probes
	SiteClusterForward   = "cluster.forward"    // submission forwarding to the key owner
	SiteClusterPeerFetch = "cluster.peer.fetch" // result fetch from a sibling's cache

	// Durability seams (internal/durable): the crash-safety surface.
	// Error rules on append/fsync model a full disk or dying device at
	// the exact moment a journal record or checkpoint must become
	// durable; corrupt rules on append flip bytes of the framed record
	// before it reaches the file, which replay's CRC check must catch.
	// Error rules on replay model unreadable segments at restart.
	// Error/latency rules on replicate model a lossy or slow link while
	// a completed result is copied to its ring successor.
	SiteDurableAppend    = "durable.append"    // journal record append
	SiteDurableFsync     = "durable.fsync"     // journal/segment fsync
	SiteDurableReplay    = "durable.replay"    // journal replay at restart
	SiteClusterReplicate = "cluster.replicate" // result replication to ring successor
)

// EnvVar names the environment variable consulted by ActivateFromEnv.
const EnvVar = "OPTIWISE_FAULT"

// Error is the typed failure produced by an error-action rule.
// Transient errors are fair game for the serve layer's retry policy;
// permanent ones fail the job immediately.
type Error struct {
	Site      string
	Msg       string
	Transient bool
}

func (e *Error) Error() string {
	kind := "transient"
	if !e.Transient {
		kind = "permanent"
	}
	return fmt.Sprintf("fault injected at %s (%s): %s", e.Site, kind, e.Msg)
}

// IsTransient reports whether err is (or wraps) a transient injected
// fault. Non-fault errors are not classified here.
func IsTransient(err error) bool {
	var fe *Error
	return asFault(err, &fe) && fe.Transient
}

// asFault is a minimal errors.As for *Error that avoids importing
// errors just for one call. It walks Unwrap chains.
func asFault(err error, target **Error) bool {
	for err != nil {
		if fe, ok := err.(*Error); ok {
			*target = fe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// PanicValue is what a panic-action rule panics with, so recovery
// code can distinguish injected panics from real bugs in tests.
type PanicValue struct {
	Site string
	Msg  string
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("fault injected panic at %s: %s", p.Site, p.Msg)
}

type action uint8

const (
	actError action = iota
	actPanic
	actLatency
	actCorrupt
)

// rule is one site:action clause. Mutable trigger state (counters,
// PRNG) is guarded by mu so concurrent passes hitting the same site
// stay internally consistent.
type rule struct {
	site      string
	act       action
	prob      float64       // p= ; 0 means "not probability-triggered"
	nth       uint64        // nth= ; fire only on this call
	every     uint64        // every= ; fire on every Nth call
	after     uint64        // after= ; skip first N calls
	count     uint64        // count= ; max fires (0 = unlimited)
	msg       string        // msg=
	delay     time.Duration // d= (latency)
	nbytes    int           // n= (corrupt)
	permanent bool          // perm

	mu    sync.Mutex
	calls uint64
	fires uint64
	rng   uint64 // splitmix64 state
}

// Plan is a parsed, installable fault schedule.
type Plan struct {
	Seed uint64
	Spec string // the spec text this plan was parsed from

	rules map[string][]*rule
	fired atomic.Uint64 // total fires, for tests/telemetry
}

// active is the installed process-global plan; nil means disabled.
var active atomic.Pointer[Plan]

// Set installs p as the process-global fault plan (nil disables
// injection) and returns the previously installed plan.
func Set(p *Plan) *Plan { return active.Swap(p) }

// Active returns the installed plan, or nil when injection is off.
func Active() *Plan { return active.Load() }

// Enabled reports whether a fault plan is installed. Hot loops hoist
// this once per run.
func Enabled() bool { return active.Load() != nil }

// Activate parses spec and installs the resulting plan. An empty spec
// uninstalls any active plan.
func Activate(spec string) error {
	if strings.TrimSpace(spec) == "" {
		Set(nil)
		return nil
	}
	p, err := Parse(spec)
	if err != nil {
		return err
	}
	Set(p)
	return nil
}

// ActivateFromEnv installs a plan from $OPTIWISE_FAULT when set.
// CLIs call this once at startup so operators can inject faults into
// any binary without new flags.
func ActivateFromEnv() error {
	spec, ok := os.LookupEnv(EnvVar)
	if !ok || strings.TrimSpace(spec) == "" {
		return nil
	}
	if err := Activate(spec); err != nil {
		return fmt.Errorf("%s: %w", EnvVar, err)
	}
	return nil
}

// EnsureSpec makes sure the process-global plan matches spec. It is
// the seam between Options.FaultSpec and the global registry: a
// profiling run that asks for a spec installs it if injection is off,
// accepts an already-active identical spec, and refuses to silently
// replace a different active plan (two concurrent jobs cannot both
// own the global registry).
func EnsureSpec(spec string) error {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	if p := Active(); p != nil {
		if p.Spec == spec {
			return nil
		}
		return fmt.Errorf("fault: plan %q already active, cannot install %q", p.Spec, spec)
	}
	return Activate(spec)
}

// Parse compiles a spec string into a Plan (see package doc for the
// grammar). Parsing never installs the plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{
		Seed:  1,
		Spec:  spec,
		rules: make(map[string][]*rule),
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			n, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			p.Seed = n
			continue
		}
		r, err := parseRule(clause)
		if err != nil {
			return nil, err
		}
		p.rules[r.site] = append(p.rules[r.site], r)
	}
	// Seed each rule's PRNG only after the whole spec (and therefore
	// the final seed= value, wherever it appeared) is known.
	i := 0
	for _, site := range sortedSites(p.rules) {
		for _, r := range p.rules[site] {
			r.rng = splitmix(p.Seed ^ hashString(r.site) ^ uint64(i)*0x9e3779b97f4a7c15)
			i++
		}
	}
	return p, nil
}

// sortedSites returns map keys in a stable order so rule seeding does
// not depend on Go map iteration.
func sortedSites(m map[string][]*rule) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort; tiny n
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func parseRule(clause string) (*rule, error) {
	parts := strings.SplitN(clause, ":", 3)
	if len(parts) < 2 {
		return nil, fmt.Errorf("fault: clause %q wants site:action[:params]", clause)
	}
	r := &rule{site: parts[0], msg: "injected"}
	switch parts[1] {
	case "error":
		r.act = actError
	case "panic":
		r.act = actPanic
	case "latency":
		r.act = actLatency
		r.delay = time.Millisecond
	case "corrupt":
		r.act = actCorrupt
		r.nbytes = 1
	default:
		return nil, fmt.Errorf("fault: unknown action %q in %q", parts[1], clause)
	}
	if len(parts) == 3 {
		for _, kv := range strings.Split(parts[2], ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			if kv == "perm" {
				r.permanent = true
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: bad param %q in %q", kv, clause)
			}
			var err error
			switch k {
			case "p":
				r.prob, err = strconv.ParseFloat(v, 64)
				if err == nil && (r.prob < 0 || r.prob > 1 || math.IsNaN(r.prob)) {
					err = fmt.Errorf("probability out of [0,1]")
				}
			case "nth":
				r.nth, err = strconv.ParseUint(v, 10, 64)
			case "every":
				r.every, err = strconv.ParseUint(v, 10, 64)
			case "after":
				r.after, err = strconv.ParseUint(v, 10, 64)
			case "count":
				r.count, err = strconv.ParseUint(v, 10, 64)
			case "msg":
				r.msg = v
			case "d":
				r.delay, err = time.ParseDuration(v)
			case "n":
				r.nbytes, err = strconv.Atoi(v)
				if err == nil && r.nbytes < 1 {
					err = fmt.Errorf("n wants >= 1")
				}
			default:
				err = fmt.Errorf("unknown param")
			}
			if err != nil {
				return nil, fmt.Errorf("fault: param %q in %q: %v", kv, clause, err)
			}
		}
	}
	return r, nil
}

// fire evaluates the rule's trigger for one call and, when it fires,
// returns true plus a fresh PRNG draw usable for corruption offsets.
func (r *rule) fire() (bool, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	if r.calls <= r.after {
		return false, 0
	}
	if r.count != 0 && r.fires >= r.count {
		return false, 0
	}
	hit := true
	switch {
	case r.nth != 0:
		hit = r.calls == r.nth
	case r.every != 0:
		hit = (r.calls-r.after)%r.every == 0
	case r.prob > 0:
		// 53-bit uniform draw in [0,1).
		draw := float64(r.next()>>11) / (1 << 53)
		hit = draw < r.prob
	}
	if !hit {
		return false, 0
	}
	r.fires++
	return true, r.next()
}

// next advances the rule's splitmix64 stream. Caller holds r.mu.
func (r *rule) next() uint64 {
	r.rng += 0x9e3779b97f4a7c15
	return splitmix(r.rng)
}

func splitmix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func hashString(s string) uint64 {
	// FNV-1a 64.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// record counts a fire on the plan and the obs registry. Firing is a
// cold path (something is about to fail), so the registry lookup per
// fire is fine — and it keeps the count correct even when the global
// registry is swapped after the plan was parsed.
func (p *Plan) record(site string) {
	p.fired.Add(1)
	obs.Counter(obs.MFaultInjections).Inc()
	// Fault activations are exactly the moments a post-mortem wants to
	// see: mirror them into the flight recorder (no-op when disabled).
	obs.Flight("fault", site, "", obs.F("fired", p.fired.Load()))
	if lg := obs.ActiveLogger(); lg != nil {
		lg.Debug("fault fired", obs.F("site", site))
	}
}

// Fired returns the total number of faults this plan has injected.
func (p *Plan) Fired() uint64 { return p.fired.Load() }

// Err evaluates the error/panic/latency rules registered at site for
// one call. It returns a *Error when an error rule fires, panics with
// a *PanicValue when a panic rule fires, sleeps when a latency rule
// fires, and returns nil otherwise. When injection is disabled it is
// a single atomic load.
func Err(site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.err(site)
}

func (p *Plan) err(site string) error {
	rules := p.rules[site]
	if len(rules) == 0 {
		return nil
	}
	for _, r := range rules {
		if r.act == actCorrupt {
			continue // corruption only applies through Bytes
		}
		hit, _ := r.fire()
		if !hit {
			continue
		}
		p.record(site)
		switch r.act {
		case actLatency:
			time.Sleep(r.delay)
		case actPanic:
			panic(&PanicValue{Site: site, Msg: r.msg})
		case actError:
			return &Error{Site: site, Msg: r.msg, Transient: !r.permanent}
		}
	}
	return nil
}

// Bytes runs the corrupt rules registered at site over data,
// returning a copy with deterministically chosen bytes flipped when a
// rule fires, or data unchanged otherwise. Serialization seams call
// it on their encoded payloads.
func Bytes(site string, data []byte) []byte {
	p := active.Load()
	if p == nil {
		return data
	}
	rules := p.rules[site]
	if len(rules) == 0 {
		return data
	}
	out := data
	copied := false
	for _, r := range rules {
		if r.act != actCorrupt {
			continue
		}
		hit, draw := r.fire()
		if !hit || len(data) == 0 {
			continue
		}
		if !copied {
			out = append([]byte(nil), data...)
			copied = true
		}
		p.record(site)
		for i := 0; i < r.nbytes; i++ {
			pos := int(draw % uint64(len(out)))
			out[pos] ^= byte(draw>>8) | 1 // always a real flip
			draw = splitmix(draw + 0x9e3779b97f4a7c15)
		}
	}
	return out
}
