package program

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"optiwise/internal/isa"
)

func sampleProgram() *Program {
	return &Program{
		Module: "m",
		Text: []isa.Instruction{
			{Op: isa.NOP},              // 0x0  f
			{Op: isa.ADD},              // 0x4  f
			{Op: isa.RET},              // 0x8  f
			{Op: isa.NOP},              // 0xc  g
			{Op: isa.JMP, Target: 0xc}, // 0x10 g
			{Op: isa.SYSCALL},          // 0x14 g
		},
		Entry: 0,
		Symbols: []Symbol{
			{Name: "f", Offset: 0},
			{Name: "g", Offset: 0xc},
			{Name: "datum", Offset: DataBase + 8},
		},
		Functions: []Function{
			{Name: "f", Lo: 0, Hi: 0xc},
			{Name: "g", Lo: 0xc, Hi: 0x18},
		},
		Lines: []LineEntry{
			{Lo: 0, Hi: 0x8, File: "a.c", Line: 1},
			{Lo: 0x8, Hi: 0xc, File: "a.c", Line: 2},
			{Lo: 0xc, Hi: 0x18, File: "b.c", Line: 7},
		},
	}
}

func TestInstAt(t *testing.T) {
	p := sampleProgram()
	if inst, ok := p.InstAt(4); !ok || inst.Op != isa.ADD {
		t.Error("InstAt(4) wrong")
	}
	if _, ok := p.InstAt(5); ok {
		t.Error("misaligned InstAt should fail")
	}
	if _, ok := p.InstAt(0x18); ok {
		t.Error("out-of-range InstAt should fail")
	}
}

func TestFuncAt(t *testing.T) {
	p := sampleProgram()
	cases := []struct {
		off  uint64
		want string
		ok   bool
	}{
		{0, "f", true}, {0x8, "f", true}, {0xb, "f", true},
		{0xc, "g", true}, {0x17, "g", true},
		{0x18, "", false},
	}
	for _, c := range cases {
		f, ok := p.FuncAt(c.off)
		if ok != c.ok || (ok && f.Name != c.want) {
			t.Errorf("FuncAt(%#x) = %v,%v want %q,%v", c.off, f.Name, ok, c.want, c.ok)
		}
	}
}

func TestFuncAtGap(t *testing.T) {
	p := sampleProgram()
	p.Functions = []Function{
		{Name: "f", Lo: 0, Hi: 0x8},
		{Name: "g", Lo: 0x10, Hi: 0x18},
	}
	if _, ok := p.FuncAt(0xc); ok {
		t.Error("FuncAt in the gap should fail")
	}
	if f, ok := p.FuncAt(0x10); !ok || f.Name != "g" {
		t.Error("FuncAt after gap wrong")
	}
}

func TestLineAt(t *testing.T) {
	p := sampleProgram()
	if le, ok := p.LineAt(4); !ok || le.Line != 1 {
		t.Errorf("LineAt(4) = %+v, %v", le, ok)
	}
	if le, ok := p.LineAt(8); !ok || le.Line != 2 {
		t.Errorf("LineAt(8) = %+v, %v", le, ok)
	}
	if _, ok := p.LineAt(0x20); ok {
		t.Error("LineAt out of range should fail")
	}
}

func TestSymbolizeTarget(t *testing.T) {
	p := sampleProgram()
	if s := p.SymbolizeTarget(0); s != "f" {
		t.Errorf("got %q", s)
	}
	if s := p.SymbolizeTarget(0x10); s != "g+0x4" {
		t.Errorf("got %q", s)
	}
	if s := p.SymbolizeTarget(0x100); s != "0x100" {
		t.Errorf("got %q", s)
	}
}

func TestValidate(t *testing.T) {
	p := sampleProgram()
	if err := p.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	bad := sampleProgram()
	bad.Text[4].Target = 0x1000
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "outside text") {
		t.Errorf("out-of-range target not caught: %v", err)
	}
	bad = sampleProgram()
	bad.Text[4].Target = 2
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Errorf("misaligned target not caught: %v", err)
	}
	bad = sampleProgram()
	bad.Functions[1].Lo = 0x8
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlap not caught: %v", err)
	}
	bad = sampleProgram()
	bad.Entry = 0x100
	if err := bad.Validate(); err == nil {
		t.Error("bad entry not caught")
	}
}

func TestLoadAndAddressTranslation(t *testing.T) {
	p := sampleProgram()
	p.Data = []byte{1, 2, 3, 4}
	img := Load(p, LoadOptions{})
	if img.TextBase != DefaultTextBase {
		t.Errorf("TextBase = %#x", img.TextBase)
	}
	if img.Mem.LoadByte(img.InitialGP) != 1 {
		t.Error("data not loaded at GP")
	}
	if img.EntryPC() != img.TextBase {
		t.Error("entry PC wrong")
	}
	off, ok := img.AbsToOff(img.TextBase + 8)
	if !ok || off != 8 {
		t.Error("AbsToOff wrong")
	}
	if _, ok := img.AbsToOff(img.TextBase - 4); ok {
		t.Error("below-base AbsToOff should fail")
	}
	if _, ok := img.AbsToOff(img.TextBase + p.TextSize()); ok {
		t.Error("above-text AbsToOff should fail")
	}
}

func TestASLRSlide(t *testing.T) {
	p := sampleProgram()
	img1 := Load(p, LoadOptions{ASLRSeed: 1})
	img2 := Load(p, LoadOptions{ASLRSeed: 2})
	img1b := Load(p, LoadOptions{ASLRSeed: 1})
	if img1.TextBase == img2.TextBase {
		t.Error("different seeds should (almost surely) slide differently")
	}
	if img1.TextBase != img1b.TextBase {
		t.Error("same seed must slide identically")
	}
	if img1.TextBase%4096 != 0 {
		t.Error("slide must be page aligned")
	}
}

func TestQuickOffAbsRoundTrip(t *testing.T) {
	p := sampleProgram()
	img := Load(p, LoadOptions{ASLRSeed: 42})
	f := func(raw uint16) bool {
		off := uint64(raw) % p.TextSize()
		got, ok := img.AbsToOff(img.OffToAbs(off))
		return ok && got == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOWXRoundTrip(t *testing.T) {
	p := sampleProgram()
	p.Data = []byte{9, 8, 7}
	var buf bytes.Buffer
	if err := p.WriteOWX(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOWX(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Module != p.Module || len(got.Text) != len(p.Text) ||
		len(got.Data) != len(p.Data) || len(got.Symbols) != len(p.Symbols) ||
		len(got.Functions) != len(p.Functions) || len(got.Lines) != len(p.Lines) {
		t.Error("owx round trip lost structure")
	}
	for i := range p.Text {
		if got.Text[i] != p.Text[i] {
			t.Fatalf("instruction %d mismatch", i)
		}
	}
}

func TestOWXRejectsGarbage(t *testing.T) {
	if _, err := ReadOWX(bytes.NewBufferString("ELF\x7f garbage")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadOWX(bytes.NewBufferString("OWX\x01 then junk")); err == nil {
		t.Error("corrupt body accepted")
	}
	if _, err := ReadOWX(bytes.NewBufferString("")); err == nil {
		t.Error("empty input accepted")
	}
}
