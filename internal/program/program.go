// Package program defines the loaded program image consumed by every other
// component: decoded text, initialized data, symbols, function boundaries,
// and a DWARF-like source line table.
//
// It is the repository's stand-in for an ELF binary plus the output of
// objdump (component 3 in the paper's figure 3). Like the paper, all profile
// data is keyed by module-relative offsets, never absolute addresses, so
// that runs under different (simulated-ASLR) load bases combine correctly
// (§IV-A).
package program

import (
	"fmt"
	"sort"

	"optiwise/internal/isa"
)

// Default link-time layout. The loader may rebase by an ASLR slide.
const (
	// DefaultTextBase is the module-relative offset 0's default absolute
	// address when loaded without ASLR.
	DefaultTextBase = 0x00400000
	// DataBase is the module-relative base offset of the data segment
	// within the module image.
	DataBase = 0x00200000
	// StackTop is the initial stack pointer handed to programs.
	StackTop = 0x7fff_ffff_0000
	// HeapBase is where the brk heap starts.
	HeapBase = 0x1000_0000_0000
)

// Symbol is a named module offset (data labels and function entries).
type Symbol struct {
	Name string
	// Offset is module-relative.
	Offset uint64
}

// Function describes a contiguous function body in the text segment.
// Offsets are module-relative; Hi is exclusive.
type Function struct {
	Name string
	Lo   uint64
	Hi   uint64
}

// Contains reports whether module offset off lies inside f.
func (f Function) Contains(off uint64) bool { return off >= f.Lo && off < f.Hi }

// LineEntry maps a text offset range [Lo, Hi) to a source location.
// This is the repository's DWARF .debug_line equivalent.
type LineEntry struct {
	Lo   uint64
	Hi   uint64
	File string
	Line int
}

// Program is a fully linked module image.
type Program struct {
	// Module is the module identifier used to key profile data, typically
	// the source file or benchmark name.
	Module string
	// Text holds the decoded instructions; the instruction at module
	// offset o is Text[o/isa.InstBytes].
	Text []isa.Instruction
	// Data holds the initialized data image, loaded at module offset
	// DataBase.
	Data []byte
	// Entry is the module offset of the first instruction to execute.
	Entry uint64

	Symbols   []Symbol    // sorted by offset
	Functions []Function  // sorted by Lo, non-overlapping
	Lines     []LineEntry // sorted by Lo
}

// TextSize returns the size of the text segment in bytes.
func (p *Program) TextSize() uint64 {
	return uint64(len(p.Text)) * isa.InstBytes
}

// InstAt returns the instruction at module offset off. It reports false if
// off is outside the text segment or misaligned.
func (p *Program) InstAt(off uint64) (isa.Instruction, bool) {
	if off%isa.InstBytes != 0 {
		return isa.Instruction{}, false
	}
	i := off / isa.InstBytes
	if i >= uint64(len(p.Text)) {
		return isa.Instruction{}, false
	}
	return p.Text[i], true
}

// FuncAt returns the function containing module offset off.
func (p *Program) FuncAt(off uint64) (Function, bool) {
	i := sort.Search(len(p.Functions), func(i int) bool {
		return p.Functions[i].Hi > off
	})
	if i < len(p.Functions) && p.Functions[i].Contains(off) {
		return p.Functions[i], true
	}
	return Function{}, false
}

// FuncByName returns the named function.
func (p *Program) FuncByName(name string) (Function, bool) {
	for _, f := range p.Functions {
		if f.Name == name {
			return f, true
		}
	}
	return Function{}, false
}

// SymbolByName returns the offset of a named symbol.
func (p *Program) SymbolByName(name string) (uint64, bool) {
	for _, s := range p.Symbols {
		if s.Name == name {
			return s.Offset, true
		}
	}
	return 0, false
}

// LineAt returns the source location covering module offset off.
func (p *Program) LineAt(off uint64) (LineEntry, bool) {
	i := sort.Search(len(p.Lines), func(i int) bool {
		return p.Lines[i].Hi > off
	})
	if i < len(p.Lines) && off >= p.Lines[i].Lo && off < p.Lines[i].Hi {
		return p.Lines[i], true
	}
	return LineEntry{}, false
}

// SymbolizeTarget renders a module offset as "name+0x..." when a function
// covers it, else as a bare hex offset. Used by report annotation.
func (p *Program) SymbolizeTarget(off uint64) string {
	if f, ok := p.FuncAt(off); ok {
		if off == f.Lo {
			return f.Name
		}
		return fmt.Sprintf("%s+0x%x", f.Name, off-f.Lo)
	}
	return fmt.Sprintf("0x%x", off)
}

// Validate checks internal consistency: direct control-transfer targets in
// range and aligned, functions sorted and non-overlapping, entry valid.
// The assembler calls this after every successful assembly.
func (p *Program) Validate() error {
	if p.Entry%isa.InstBytes != 0 || p.Entry >= p.TextSize() {
		return fmt.Errorf("program %s: entry 0x%x outside text", p.Module, p.Entry)
	}
	for i, inst := range p.Text {
		switch inst.Op.Kind() {
		case isa.KindBranch, isa.KindJump, isa.KindCall:
			if inst.Target%isa.InstBytes != 0 {
				return fmt.Errorf("inst %d (%s): misaligned target 0x%x",
					i, inst.Op, inst.Target)
			}
			if inst.Target >= p.TextSize() {
				return fmt.Errorf("inst %d (%s): target 0x%x outside text",
					i, inst.Op, inst.Target)
			}
		}
	}
	for i := 1; i < len(p.Functions); i++ {
		prev, cur := p.Functions[i-1], p.Functions[i]
		if cur.Lo < prev.Hi {
			return fmt.Errorf("functions %s and %s overlap", prev.Name, cur.Name)
		}
	}
	return nil
}
