package program

import (
	"math/rand"

	"optiwise/internal/isa"
	"optiwise/internal/mem"
)

// Image is a Program loaded at a concrete base address, together with its
// initialized memory. Execution engines (interpreter, pipeline simulator,
// DBI) run Images; profilers translate the absolute PCs they observe back
// to module offsets through it.
type Image struct {
	Prog *Program
	// TextBase is the absolute address of module offset 0.
	TextBase uint64
	// Mem is the process memory with the data segment loaded.
	Mem *mem.Memory
	// InitialSP is the stack pointer at entry.
	InitialSP uint64
	// InitialGP is the global pointer at entry: the absolute address of
	// the data segment, so position-independent code can address data as
	// offsets from GP.
	InitialGP uint64
}

// LoadOptions configures Load.
type LoadOptions struct {
	// ASLRSeed, when non-zero, randomizes the load base with a
	// deterministic page-aligned slide derived from the seed. This
	// reproduces the address-space layout randomization that forces
	// OptiWISE to aggregate by (module, offset) rather than absolute
	// address (§IV-A).
	ASLRSeed int64
}

// Load places p into a fresh memory at its (possibly ASLR-slid) base.
func Load(p *Program, opts LoadOptions) *Image {
	base := uint64(DefaultTextBase)
	if opts.ASLRSeed != 0 {
		rng := rand.New(rand.NewSource(opts.ASLRSeed))
		// Slide by up to 2^28 bytes in page increments, like Linux
		// mmap_rnd_bits on x86-64.
		slide := uint64(rng.Int63n(1<<28)) &^ (mem.PageSize - 1)
		base += slide
	}
	m := mem.New()
	if len(p.Data) > 0 {
		m.Write(base+DataBase, p.Data)
	}
	return &Image{
		Prog:      p,
		TextBase:  base,
		Mem:       m,
		InitialSP: StackTop,
		InitialGP: base + DataBase,
	}
}

// EntryPC returns the absolute address of the program entry point.
func (im *Image) EntryPC() uint64 { return im.TextBase + im.Prog.Entry }

// OffToAbs converts a module offset to an absolute address.
func (im *Image) OffToAbs(off uint64) uint64 { return im.TextBase + off }

// AbsToOff converts an absolute PC to a module offset. It reports false for
// addresses outside the text segment.
func (im *Image) AbsToOff(pc uint64) (uint64, bool) {
	if pc < im.TextBase {
		return 0, false
	}
	off := pc - im.TextBase
	if off >= im.Prog.TextSize() {
		return 0, false
	}
	return off, true
}

// InstAtPC fetches the instruction at absolute address pc.
func (im *Image) InstAtPC(pc uint64) (isa.Instruction, bool) {
	off, ok := im.AbsToOff(pc)
	if !ok {
		return isa.Instruction{}, false
	}
	return im.Prog.InstAt(off)
}
