package program

import (
	"encoding/gob"
	"fmt"
	"io"
)

// The OWX container is this repository's ELF stand-in: a serialized
// Program image (decoded text, data, symbols, functions, line table) that
// the optiwise CLI can profile without re-assembling — matching the
// paper's workflow, where the tool consumes an arbitrary binary
// executable produced by an independent compiler (§IV-A).

// owxMagic identifies OWX files; owxVersion gates format changes.
const (
	owxMagic   = "OWX\x01"
	owxVersion = 1
)

// owxFile is the serialized form.
type owxFile struct {
	Version int
	Prog    Program
}

// WriteOWX serializes p as an OWX binary image.
func (p *Program) WriteOWX(w io.Writer) error {
	if _, err := io.WriteString(w, owxMagic); err != nil {
		return err
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(owxFile{Version: owxVersion, Prog: *p}); err != nil {
		return fmt.Errorf("program: encode owx: %w", err)
	}
	return nil
}

// ReadOWX deserializes an OWX image written by WriteOWX.
func ReadOWX(r io.Reader) (*Program, error) {
	magic := make([]byte, len(owxMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("program: read owx magic: %w", err)
	}
	if string(magic) != owxMagic {
		return nil, fmt.Errorf("program: not an OWX image (bad magic %q)", magic)
	}
	var f owxFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("program: decode owx: %w", err)
	}
	if f.Version != owxVersion {
		return nil, fmt.Errorf("program: unsupported OWX version %d", f.Version)
	}
	p := f.Prog
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("program: corrupt OWX image: %w", err)
	}
	return &p, nil
}
