package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optiwise/internal/fault"
	"optiwise/internal/trailer"
)

func rec(typ, job, key string, data string) Record {
	var raw json.RawMessage
	if data != "" {
		raw = json.RawMessage(data)
	}
	return Record{Type: typ, Job: job, Key: key, Data: raw}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, sum, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Records) != 0 || sum.Truncated != 0 {
		t.Fatalf("fresh journal replayed %+v", sum)
	}
	want := []Record{
		rec(RecSubmit, "job-1", "aaaa", `{"module":"m"}`),
		rec(RecStart, "job-1", "aaaa", ""),
		rec(RecComplete, "job-1", "aaaa", `{"cycles":42}`),
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, sum2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(sum2.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(sum2.Records), len(want))
	}
	for i, r := range sum2.Records {
		if r.Type != want[i].Type || r.Job != want[i].Job || r.Key != want[i].Key {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	if sum2.Truncated != 0 {
		t.Errorf("truncated = %d, want 0", sum2.Truncated)
	}
}

// TestJournalTornTail cuts the last record mid-payload — the kill -9
// signature — and verifies replay keeps the intact prefix, counts the
// torn record, and physically truncates the file so the damage is
// handled exactly once.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(RecSubmit, "j1", "k1", "")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(RecComplete, "j1", "k1", "")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	seg := activeSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	tornLen := len(data) - 5

	j2, sum, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(sum.Records) != 1 || sum.Records[0].Type != RecSubmit {
		t.Fatalf("replay = %+v, want just the submit", sum.Records)
	}
	if sum.Truncated != 1 {
		t.Errorf("truncated = %d, want 1", sum.Truncated)
	}
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(tornLen) {
		t.Errorf("torn segment not truncated: size %d", fi.Size())
	}
}

// TestJournalMidFileCorruption flips a byte in the first of two
// records: replay must fail closed at the flip — the intact-looking
// second record is never applied, because nothing past an unverified
// byte can be trusted.
func TestJournalMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(RecSubmit, "j1", "k1", "")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(RecComplete, "j1", "k1", "")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	seg := activeSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[recHeaderSize+2] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, sum, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(sum.Records) != 0 {
		t.Fatalf("replay applied %d records past corruption, want 0", len(sum.Records))
	}
	if sum.Truncated == 0 {
		t.Error("corruption not counted")
	}
}

// TestJournalRotation drives enough records through to roll segments
// and verifies replay stitches them back in order.
func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Big payloads force rotation without thousands of appends.
	big := strings.Repeat("x", 1<<20)
	const n = 10
	for i := 0; i < n; i++ {
		data := fmt.Sprintf(`{"i":%d,"pad":%q}`, i, big)
		if err := j.Append(rec(RecSubmit, fmt.Sprintf("j%d", i), "", data)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(names))
	}
	_, sum, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Records) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(sum.Records), n)
	}
	for i, r := range sum.Records {
		if want := fmt.Sprintf("j%d", i); r.Job != want {
			t.Errorf("record %d job = %q, want %q (order lost across rotation)", i, r.Job, want)
		}
	}
}

// TestJournalAppendFaults verifies the append and fsync fault seams
// surface as errors without wedging the journal.
func TestJournalAppendFaults(t *testing.T) {
	for _, site := range []string{fault.SiteDurableAppend, fault.SiteDurableFsync} {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			j, _, err := OpenJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			if err := fault.Activate(site + ":error:nth=1"); err != nil {
				t.Fatal(err)
			}
			defer fault.Set(nil)
			if err := j.Append(rec(RecSubmit, "j1", "k1", "")); err == nil {
				t.Fatalf("append survived %s fault", site)
			}
			if err := j.Append(rec(RecSubmit, "j2", "k2", "")); err != nil {
				t.Fatalf("journal wedged after injected fault: %v", err)
			}
		})
	}
}

// TestJournalAppendCorruptionCaught injects byte flips at the append
// seam and verifies replay refuses the mangled record instead of
// resurrecting garbage.
func TestJournalAppendCorruptionCaught(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(fault.SiteDurableAppend + ":corrupt:nth=1,n=3"); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(RecSubmit, "j1", "k1", `{"module":"m"}`)); err != nil {
		t.Fatal(err)
	}
	fault.Set(nil)
	j.Close()

	_, sum, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Records) != 0 {
		t.Fatalf("replay trusted a corrupted record: %+v", sum.Records)
	}
	if sum.Truncated == 0 {
		t.Error("corrupted record not counted")
	}
}

func TestAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := AtomicWrite(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWrite(path, []byte("v2"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2" {
		t.Fatalf("read %q, want v2", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestStoreSegments(t *testing.T) {
	root := t.TempDir()
	s, sum, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(sum.Records) != 0 {
		t.Fatalf("fresh store replayed %+v", sum)
	}

	key := strings.Repeat("ab", 32)
	if err := s.WriteProgram(key, []byte("program-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteProgram(key, []byte("different")); err != nil {
		t.Fatal(err) // idempotent: first write wins
	}
	prog, err := s.ReadProgram(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(prog) != "program-bytes" {
		t.Fatalf("program = %q", prog)
	}

	payload := []byte(`{"export":{}}`)
	if err := s.WriteResult(key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadResult(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("result = %q", got)
	}
	if !s.HasResult(key) {
		t.Error("HasResult = false after write")
	}

	digests, err := s.ResultDigests()
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := digests[key]; !ok || len(d) != 64 {
		t.Fatalf("digest map = %v", digests)
	}

	// Corrupt the segment on disk: read must fail typed, digest map
	// must expose it as divergent (empty digest), never trust it.
	segPath := s.resultPath(key)
	data, _ := os.ReadFile(segPath)
	data[3] ^= 0x40
	os.WriteFile(segPath, data, 0o644)
	if _, err := s.ReadResult(key); err == nil {
		t.Fatal("read of corrupted segment succeeded")
	} else {
		var ce *trailer.CorruptError
		if !asCorrupt(err, &ce) {
			t.Fatalf("corruption error untyped: %v", err)
		}
	}
	digests, err = s.ResultDigests()
	if err != nil {
		t.Fatal(err)
	}
	if digests[key] != "" {
		t.Fatalf("corrupt segment digest = %q, want empty", digests[key])
	}

	if err := s.RemoveResult(key); err != nil {
		t.Fatal(err)
	}
	if s.HasResult(key) {
		t.Error("HasResult = true after remove")
	}

	if err := s.WriteCheckpoint(key, []byte("ckpt")); err != nil {
		t.Fatal(err)
	}
	ck, err := s.ReadCheckpoint(key)
	if err != nil || string(ck) != "ckpt" {
		t.Fatalf("checkpoint = %q, %v", ck, err)
	}
	if err := s.RemoveCheckpoint(key); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadCheckpoint(key); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survives remove: %v", err)
	}
}

func asCorrupt(err error, target **trailer.CorruptError) bool {
	for err != nil {
		if ce, ok := err.(*trailer.CorruptError); ok {
			*target = ce
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// activeSegment returns the path of the single newest segment.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no segments")
	}
	return filepath.Join(dir, names[len(names)-1])
}

// FuzzJournalReplay feeds arbitrary bytes to the segment scanner:
// whatever the input, replay must neither panic nor hand back a
// record whose frame did not verify. CI persists the corpus so
// crashing inputs regression-test forever.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a valid two-record segment and mechanical mutations of
	// it, so the fuzzer starts at the interesting boundaries.
	valid := func() []byte {
		var buf []byte
		for _, r := range []Record{
			rec(RecSubmit, "j1", "k1", `{"module":"m"}`),
			rec(RecComplete, "j1", "k1", `{"cycles":1}`),
		} {
			framed, err := frameRecord(r)
			if err != nil {
				f.Fatal(err)
			}
			buf = append(buf, framed...)
		}
		return buf
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte(recMagic))
	// A frame declaring a huge length must not cause a huge allocation.
	huge := make([]byte, recHeaderSize)
	copy(huge, recMagic)
	binary.LittleEndian.PutUint32(huge[4:8], 1<<31)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, truncated := scanRecords(data)
		if goodLen > len(data) || goodLen < 0 {
			t.Fatalf("goodLen %d out of range for %d input bytes", goodLen, len(data))
		}
		if truncated == 0 && goodLen != len(data) {
			t.Fatalf("clean scan stopped early at %d/%d", goodLen, len(data))
		}
		// Every surviving record must re-verify: reframe it and check
		// it still marshals cleanly.
		for _, r := range recs {
			if _, err := frameRecord(r); err != nil {
				t.Fatalf("replayed record does not reframe: %v", err)
			}
		}
		// Rescanning the intact prefix must reproduce the same records
		// with nothing truncated — the invariant file truncation relies
		// on.
		again, againLen, againTrunc := scanRecords(data[:goodLen])
		if len(again) != len(recs) || againLen != goodLen || againTrunc != 0 {
			t.Fatalf("prefix rescan diverged: %d/%d records, len %d/%d, trunc %d",
				len(again), len(recs), againLen, goodLen, againTrunc)
		}
	})
}

// TestReplayAfterFuzzStyleDamage keeps one end-to-end file-level check
// of what the fuzzer exercises in memory: a fuzz-damaged segment must
// replay without error and leave the journal appendable.
func TestReplayAfterFuzzStyleDamage(t *testing.T) {
	dir := t.TempDir()
	seg := filepath.Join(dir, segmentName(1))
	framed, err := frameRecord(rec(RecSubmit, "j1", "k1", ""))
	if err != nil {
		t.Fatal(err)
	}
	damaged := append(append([]byte{}, framed...), []byte("OWJRgarbage")...)
	if err := os.WriteFile(seg, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	j, sum, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("replay errored: %v", err)
	}
	defer j.Close()
	if len(sum.Records) != 1 || sum.Truncated != 1 {
		t.Fatalf("replay = %d records, %d truncated", len(sum.Records), sum.Truncated)
	}
	if err := j.Append(Record{Type: RecSubmit, Job: "post"}); err != nil {
		t.Fatalf("journal unusable after damaged replay: %v", err)
	}
}
