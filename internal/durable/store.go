package durable

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"optiwise/internal/trailer"
)

// Store is the on-disk layout under one -data-dir:
//
//	<root>/journal/NNNNNNNN.wal   append-only job journal segments
//	<root>/programs/<key>.owx     content-addressed program images
//	<root>/results/<key>.owpr     trailer-framed completed results
//	<root>/checkpoints/<key>.ckpt trailer-framed stream-combiner state
//
// Keys are the serve layer's content-addressed job digests (SHA-256
// hex), so every filename is filesystem-safe by construction and a
// segment's identity doubles as its lookup key. Program images are
// written once at submit so the journal stays small and replay can
// reconstruct a runnable job without the client; result segments carry
// the exact wire-encoded payload the cluster peer-fetch path serves,
// so replication and anti-entropy move bytes, never re-encode.
type Store struct {
	root    string
	journal *Journal
}

// Open brings up the store under root, creating the layout and
// replaying the journal. The returned summary carries every intact
// journal record for the caller to interpret.
func Open(root string) (*Store, *ReplaySummary, error) {
	for _, sub := range []string{"programs", "results", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(root, sub), 0o755); err != nil {
			return nil, nil, fmt.Errorf("durable: store dir: %w", err)
		}
	}
	j, sum, err := OpenJournal(filepath.Join(root, "journal"))
	if err != nil {
		return nil, nil, err
	}
	return &Store{root: root, journal: j}, sum, nil
}

// Journal returns the store's job journal.
func (s *Store) Journal() *Journal { return s.journal }

// Close closes the journal.
func (s *Store) Close() error { return s.journal.Close() }

func (s *Store) programPath(key string) string {
	return filepath.Join(s.root, "programs", key+".owx")
}

func (s *Store) resultPath(key string) string {
	return filepath.Join(s.root, "results", key+".owpr")
}

func (s *Store) checkpointPath(key string) string {
	return filepath.Join(s.root, "checkpoints", key+".ckpt")
}

// WriteProgram persists a program image under its job key. Content
// addressing makes the write idempotent: an existing image is already
// the right bytes, so resubmits skip the I/O.
func (s *Store) WriteProgram(key string, data []byte) error {
	path := s.programPath(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	return AtomicWrite(path, trailer.Append(append([]byte(nil), data...)), 0o644)
}

// ReadProgram returns the program image stored under key, verifying
// its frame.
func (s *Store) ReadProgram(key string) ([]byte, error) {
	return s.readFramed(s.programPath(key))
}

// WriteResult persists a completed result's wire payload under its
// key. The payload is framed so anti-entropy and replay can prove a
// segment intact without decoding it.
func (s *Store) WriteResult(key string, payload []byte) error {
	return AtomicWrite(s.resultPath(key), trailer.Append(append([]byte(nil), payload...)), 0o644)
}

// ReadResult returns the stored wire payload for key, verifying its
// frame. Corruption surfaces as a *trailer.CorruptError.
func (s *Store) ReadResult(key string) ([]byte, error) {
	return s.readFramed(s.resultPath(key))
}

// HasResult reports whether a result segment exists for key (without
// verifying it).
func (s *Store) HasResult(key string) bool {
	_, err := os.Stat(s.resultPath(key))
	return err == nil
}

// RemoveResult deletes the result segment for key (used when
// anti-entropy finds it corrupt and will re-pull from a peer).
func (s *Store) RemoveResult(key string) error {
	err := os.Remove(s.resultPath(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// ResultDigests maps every stored result key to the SHA-256 hex of its
// verified payload — the same digest the peer-cache wire protocol
// carries in X-Optiwise-Checksum, so two owners comparing maps are
// comparing exactly what a repair fetch would re-verify. Segments that
// fail verification are reported with an empty digest: visible as
// divergent, never trusted.
func (s *Store) ResultDigests() (map[string]string, error) {
	dir := filepath.Join(s.root, "results")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: results dir: %w", err)
	}
	out := make(map[string]string)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".owpr") {
			continue
		}
		key := strings.TrimSuffix(name, ".owpr")
		payload, err := s.readFramed(filepath.Join(dir, name))
		if err != nil {
			out[key] = ""
			continue
		}
		sum := sha256.Sum256(payload)
		out[key] = hex.EncodeToString(sum[:])
	}
	return out, nil
}

// ResultKeys returns the stored result keys in sorted order.
func (s *Store) ResultKeys() ([]string, error) {
	digests, err := s.ResultDigests()
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(digests))
	for k := range digests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// WriteCheckpoint persists a stream-combiner checkpoint for key. Each
// window's checkpoint atomically replaces the previous one, so the
// store always holds exactly the last durable window.
func (s *Store) WriteCheckpoint(key string, data []byte) error {
	return AtomicWrite(s.checkpointPath(key), trailer.Append(append([]byte(nil), data...)), 0o644)
}

// ReadCheckpoint returns the checkpoint stored for key, or
// os.ErrNotExist when the job never checkpointed.
func (s *Store) ReadCheckpoint(key string) ([]byte, error) {
	return s.readFramed(s.checkpointPath(key))
}

// RemoveCheckpoint drops the checkpoint for key once its job reached a
// terminal state.
func (s *Store) RemoveCheckpoint(key string) error {
	err := os.Remove(s.checkpointPath(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// readFramed loads a trailer-framed file and returns the verified
// payload. An unframed file — impossible through this package's
// writers — is treated as corrupt, not legacy: the store never wrote
// it, so nothing may trust it.
func (s *Store) readFramed(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, framed, err := trailer.Verify(data)
	if err != nil {
		return nil, fmt.Errorf("durable: %s: %w", filepath.Base(path), err)
	}
	if !framed {
		return nil, fmt.Errorf("durable: %s: %w", filepath.Base(path),
			&trailer.CorruptError{Reason: "segment missing its frame"})
	}
	return payload, nil
}
