// Package durable is the crash-safety layer under the serve and
// cluster stacks (DESIGN.md §13): an atomic-write helper, a
// write-ahead job journal with CRC-framed records, and content-
// addressed segment stores for program images, completed results, and
// stream checkpoints.
//
// The design premise mirrors the paper's own: OptiWISE trusts a
// profile only because two independent passes agree, and this layer
// trusts on-disk state only because every byte is covered by a
// checksum that is verified before the bytes can influence anything.
// A record or segment that fails its CRC is discarded and counted —
// never partially applied — so a crash at any instant leaves the
// store in a state replay can prove consistent.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWrite writes data to path so a crash at any instant leaves
// either the old file or the new one, never a torn mix: the bytes go
// to a temporary file in the same directory, are fsynced, renamed
// over path, and the directory entry is fsynced. Every file the
// process persists for later reads — journal segments, result and
// checkpoint segments, the serve addr-file, flight-recorder dumps,
// benchgate baselines — funnels through here.
func AtomicWrite(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// On any failure, leave no temp file behind.
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("durable: atomic write %s: %s: %w", path, step, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("write", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail("chmod", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("fsync", err)
	}
	if err := tmp.Close(); err != nil {
		return fail("close", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: atomic write %s: rename: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a
// crash. Filesystems that refuse directory fsync (some network and
// overlay mounts) degrade to rename-only atomicity rather than
// failing the write.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() // best effort; see above
	return nil
}
