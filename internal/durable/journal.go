package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"optiwise/internal/fault"
	"optiwise/internal/trailer"
)

// Journal record types. The journal is the single source of truth for
// job state across restarts: a job whose last record is submit, start,
// or retry is incomplete and re-enqueued at replay; complete, fail, and
// cancel are terminal. Regress records restore the lineage-regression
// counter so /v1/stats stays continuous across restarts.
const (
	RecSubmit   = "submit"
	RecStart    = "start"
	RecRetry    = "retry"
	RecComplete = "complete"
	RecFail     = "fail"
	RecCancel   = "cancel"
	RecRegress  = "regress"
)

// Record is one journal entry. Type and Key carry the state-machine
// transition; Data is an opaque payload owned by the writer (the serve
// layer stores its submission parameters and completion summaries
// there), so the journal format does not chase the serve schema.
type Record struct {
	Type string          `json:"type"`
	Job  string          `json:"job,omitempty"`
	Key  string          `json:"key,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Record framing: each record is a 12-byte header followed by the
// JSON payload.
//
//	offset  size  field
//	0       4     magic "OWJR" (OptiWise Journal Record)
//	4       4     payload length, little-endian uint32
//	8       4     CRC-32C (Castagnoli) of the payload
//
// Unlike profile files — framed by a *trailer* so writers stay
// single-pass over large payloads — journal records are tiny and
// read front-to-back, so a header frame lets replay scan forward
// without trusting any byte it has not yet checksummed.
const (
	recMagic      = "OWJR"
	recHeaderSize = 12
	// maxRecordBytes bounds a single record so a corrupt length field
	// cannot make replay attempt a multi-gigabyte allocation.
	maxRecordBytes = 16 << 20
)

// maxSegmentBytes triggers rotation to a fresh segment. Segments are
// only appended to while active and only read at replay, so the size
// just bounds how much one corrupt file can take down.
const maxSegmentBytes = 4 << 20

// ReplaySummary reports what a journal replay recovered and what it
// had to discard.
type ReplaySummary struct {
	Records   []Record // every intact record, in append order
	Segments  int      // segments scanned
	Truncated int      // record-units discarded (torn tails + corrupt frames)
}

// Journal is the append-only WAL. Appends are serialized; each one is
// framed, written, and fsynced before Append returns, so an
// acknowledged record survives kill -9 at the very next instruction.
type Journal struct {
	dir string

	mu   sync.Mutex
	f    *os.File
	seq  int
	size int64
}

// segmentName formats the on-disk name of segment n.
func segmentName(n int) string { return fmt.Sprintf("%08d.wal", n) }

// OpenJournal replays every existing segment under dir (creating it if
// needed), then opens a fresh segment for appends. Appending to a new
// segment rather than the replayed tail means replay never has to
// trust a file the previous process may have died mid-write to: the
// old tail is truncated to its last intact record and left read-only.
func OpenJournal(dir string) (*Journal, *ReplaySummary, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: journal dir: %w", err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, nil, err
	}
	sum := &ReplaySummary{}
	last := 0
	for i, name := range names {
		seq, ok := segmentSeq(name)
		if !ok {
			continue
		}
		if seq > last {
			last = seq
		}
		if err := replaySegment(filepath.Join(dir, name), i == len(names)-1, sum); err != nil {
			return nil, nil, err
		}
	}
	j := &Journal{dir: dir, seq: last}
	if err := j.rotateLocked(); err != nil {
		return nil, nil, err
	}
	return j, sum, nil
}

func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: journal dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".wal" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func segmentSeq(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "%08d.wal", &n); err != nil {
		return 0, false
	}
	return n, true
}

// replaySegment scans one segment's records into sum. A frame that
// fails its checks stops the scan of this segment: on the final
// segment the file is physically truncated back to the last intact
// record (a torn tail is the expected signature of kill -9 mid-write);
// on earlier segments — which were fsynced and rotated away, so damage
// there means real corruption, not a torn write — the remainder is
// discarded and counted but the file is left for forensics. Either
// way, no record past the damage is applied: replay fails closed.
func replaySegment(path string, isLast bool, sum *ReplaySummary) error {
	if err := fault.Err(fault.SiteDurableReplay); err != nil {
		return fmt.Errorf("durable: replay %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("durable: replay %s: %w", path, err)
	}
	sum.Segments++
	recs, goodLen, truncated := scanRecords(data)
	sum.Records = append(sum.Records, recs...)
	sum.Truncated += truncated
	if truncated > 0 && isLast {
		// Torn tail: cut the file back to the last intact record so the
		// damage is dealt with exactly once.
		if err := os.Truncate(path, int64(goodLen)); err != nil {
			return fmt.Errorf("durable: truncate torn tail of %s: %w", path, err)
		}
	}
	return nil
}

// scanRecords walks framed records from the front of data, stopping at
// the first frame that fails any check. goodLen is the byte offset of
// the last intact record boundary; truncated counts the discarded
// remainder as one record-unit. Pure over its input, so the fuzzer can
// hammer it without touching a filesystem.
func scanRecords(data []byte) (recs []Record, goodLen, truncated int) {
	off := 0
	for off < len(data) {
		rec, n, ok := nextRecord(data[off:])
		if !ok {
			return recs, off, 1
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, off, 0
}

// nextRecord decodes one framed record from the front of buf. ok is
// false when the frame is incomplete or fails any check; the caller
// cannot distinguish a torn write from a bit flip and must not trust
// anything at or past this offset.
func nextRecord(buf []byte) (rec Record, n int, ok bool) {
	if len(buf) < recHeaderSize {
		return Record{}, 0, false
	}
	if string(buf[:4]) != recMagic {
		return Record{}, 0, false
	}
	size := binary.LittleEndian.Uint32(buf[4:8])
	if size > maxRecordBytes || recHeaderSize+int(size) > len(buf) {
		return Record{}, 0, false
	}
	payload := buf[recHeaderSize : recHeaderSize+int(size)]
	if trailer.Checksum(payload) != binary.LittleEndian.Uint32(buf[8:12]) {
		return Record{}, 0, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, false
	}
	return rec, recHeaderSize + int(size), true
}

// frameRecord encodes rec with its header frame.
func frameRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("durable: marshal record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("durable: record of %d bytes exceeds the %d-byte frame limit", len(payload), maxRecordBytes)
	}
	out := make([]byte, recHeaderSize+len(payload))
	copy(out, recMagic)
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[8:12], trailer.Checksum(payload))
	copy(out[recHeaderSize:], payload)
	return out, nil
}

// Append frames rec, writes it to the active segment, and fsyncs
// before returning, rotating to a fresh segment when the active one is
// full. The write and the fsync are independent fault seams
// (durable.append, durable.fsync) so the chaos suite can kill the
// process between "bytes in the page cache" and "bytes on disk".
func (j *Journal) Append(rec Record) error {
	framed, err := frameRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("durable: append to closed journal")
	}
	if err := fault.Err(fault.SiteDurableAppend); err != nil {
		return err
	}
	// A corrupt rule here models a disk writing garbage; replay's CRC
	// must refuse the record rather than resurrect a mangled job.
	framed = fault.Bytes(fault.SiteDurableAppend, framed)
	if j.size+int64(len(framed)) > maxSegmentBytes && j.size > 0 {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := j.f.Write(framed)
	j.size += int64(n)
	if err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if err := fault.Err(fault.SiteDurableFsync); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	return nil
}

// rotateLocked finalizes the active segment (fsync + close) and brings
// up the next one. The new segment is born through the atomic-write
// path — created as a temp file, fsynced empty, renamed into place,
// directory fsynced — so a crash during rotation leaves either the old
// tail alone or a fully registered empty successor, never a
// half-named file replay would have to guess about.
func (j *Journal) rotateLocked() error {
	if j.f != nil {
		if err := j.syncLocked(); err != nil {
			return err
		}
		if err := j.f.Close(); err != nil {
			return fmt.Errorf("durable: close segment: %w", err)
		}
		j.f = nil
	}
	j.seq++
	path := filepath.Join(j.dir, segmentName(j.seq))
	if err := AtomicWrite(path, nil, 0o644); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: open segment: %w", err)
	}
	j.f = f
	j.size = 0
	return nil
}

// Sync flushes the active segment to disk (a final barrier for
// graceful shutdown; Append already syncs per record).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.syncLocked()
}

// Close fsyncs and closes the active segment. Appends after Close
// fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
