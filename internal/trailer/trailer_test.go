package trailer

import (
	"bytes"
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte(`{"module":"m","records":[]}`),
		bytes.Repeat([]byte{0xA5}, 4096),
	} {
		framed := Append(append([]byte(nil), payload...))
		if len(framed) != len(payload)+Size {
			t.Fatalf("framed length %d, want %d", len(framed), len(payload)+Size)
		}
		got, ok, err := Verify(framed)
		if err != nil || !ok {
			t.Fatalf("Verify(framed %d bytes): ok=%v err=%v", len(payload), ok, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch after round trip")
		}
	}
}

func TestLegacyPassthrough(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("short"),
		[]byte(`{"module":"m"}`),
		bytes.Repeat([]byte("legacy-profile "), 64),
	} {
		got, ok, err := Verify(data)
		if err != nil || ok {
			t.Fatalf("legacy input misread: ok=%v err=%v", ok, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("legacy payload altered")
		}
	}
}

func TestDetectsEverySingleBitFlip(t *testing.T) {
	payload := []byte(`{"module":"m","period":1000}`)
	framed := Append(append([]byte(nil), payload...))
	for i := 0; i < len(framed)*8; i++ {
		mut := append([]byte(nil), framed...)
		mut[i/8] ^= 1 << (i % 8)
		got, ok, err := Verify(mut)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("bit %d: untyped error %v", i, err)
			}
			continue // detected as corruption: good
		}
		if ok && bytes.Equal(got, payload) {
			t.Fatalf("bit %d: flip passed verification undetected", i)
		}
		// ok==false (demoted to legacy) is acceptable: the caller's
		// strict decoder then sees trailer bytes as trailing garbage.
		// ok==true with a different payload is impossible given the CRC
		// passed, short of a collision.
	}
}

func TestTruncationDetected(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdef"), 100)
	framed := Append(append([]byte(nil), payload...))
	// Truncating the payload region removes trailer bytes → either a
	// corrupt error or legacy demotion, never a clean verify of the
	// original payload.
	for _, cut := range []int{1, Size - 1, Size, Size + 7, len(framed) / 2} {
		mut := framed[:len(framed)-cut]
		got, ok, err := Verify(mut)
		if err == nil && ok && bytes.Equal(got, payload) {
			t.Fatalf("cut %d bytes: truncation passed verification", cut)
		}
	}
	// Splicing two framed files then reading the tail frame must fail
	// the length check rather than silently yield the second payload...
	spliced := append(append([]byte(nil), framed...), framed...)
	_, ok, err := Verify(spliced)
	var ce *CorruptError
	if !errors.As(err, &ce) || !ok {
		t.Fatalf("spliced file: ok=%v err=%v, want typed corruption", ok, err)
	}
}

func TestVerifyDoesNotCopy(t *testing.T) {
	payload := []byte("0123456789")
	framed := Append(append([]byte(nil), payload...))
	got, _, err := Verify(framed)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &framed[0] {
		t.Fatal("Verify copied the payload")
	}
}
