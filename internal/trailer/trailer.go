// Package trailer frames serialized profiles with a magic-bytes +
// length + checksum trailer so truncated or bit-flipped files fail
// fast with a typed error instead of surfacing as confusing JSON
// decode errors (or, worse, decoding successfully into a subtly wrong
// profile).
//
// # Format
//
// A framed payload is the raw serialized bytes followed by a fixed
// 22-byte trailer:
//
//	offset  size  field
//	0       6     magic "#OWPF1"
//	6       8     payload length, little-endian uint64
//	14      4     CRC-32C (Castagnoli) of the payload
//	18      4     CRC-32C of the preceding 18 trailer bytes
//
// Putting the frame at the *end* keeps writers single-pass (no
// seeking, no buffering the payload to learn its length first — the
// writer already has the payload in hand) and lets readers accept
// legacy untrailered files: if the last 22 bytes don't carry the
// magic, the whole input is treated as a bare legacy payload.
//
// The trailer's own CRC distinguishes "trailer present but damaged"
// from "no trailer at all" with odds of a random 22-byte tail passing
// both checks at ~2^-32; a bit flip anywhere in a framed file —
// payload, length, magic, or checksum — is therefore detected either
// by the payload CRC (typed *CorruptError) or by demotion to legacy
// parsing, where strict JSON validation rejects the tail bytes.
package trailer

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Magic identifies an OptiWISE profile trailer ("OptiWise Profile
// Frame v1"). The leading '#' keeps a trailer line inert if a framed
// profile is ever concatenated into something line-oriented.
const Magic = "#OWPF1"

// Size is the fixed byte length of the trailer.
const Size = len(Magic) + 8 + 4 + 4

// castagnoli is the CRC-32C table; hardware-accelerated on the
// platforms Go supports.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a framed payload that failed verification.
// Callers use errors.As to distinguish corruption (fail fast, never
// retry the bytes) from legacy or absent framing.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string {
	return "trailer: corrupt profile: " + e.Reason
}

// Checksum returns the CRC-32C (Castagnoli) of data — the same
// polynomial the frame uses. Exported so record-oriented formats (the
// durable job journal) can frame individual records with the exact
// checksum a frame-level Verify would compute, and so anti-entropy
// digest exchanges hash segments consistently across nodes.
func Checksum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// Append returns data with a trailer appended. The payload bytes are
// not copied when data has capacity.
func Append(data []byte) []byte {
	var t [Size]byte
	copy(t[:], Magic)
	binary.LittleEndian.PutUint64(t[len(Magic):], uint64(len(data)))
	binary.LittleEndian.PutUint32(t[len(Magic)+8:], crc32.Checksum(data, castagnoli))
	binary.LittleEndian.PutUint32(t[len(Magic)+12:], crc32.Checksum(t[:len(Magic)+12], castagnoli))
	return append(data, t[:]...)
}

// Verify inspects data for a trailer.
//
//   - Framed and intact: returns the payload (a subslice of data) and
//     framed=true.
//   - Framed but damaged (bad length or payload checksum): returns a
//     *CorruptError.
//   - No trailer: returns data unchanged and framed=false, so callers
//     fall back to legacy parsing.
func Verify(data []byte) (payload []byte, framed bool, err error) {
	if len(data) < Size {
		return data, false, nil
	}
	t := data[len(data)-Size:]
	if string(t[:len(Magic)]) != Magic {
		return data, false, nil
	}
	// The trailer's own checksum decides whether this really is a
	// trailer (vs. a legacy payload that happens to end in the magic,
	// or a trailer whose fields were themselves flipped).
	wantSelf := binary.LittleEndian.Uint32(t[len(Magic)+12:])
	if crc32.Checksum(t[:len(Magic)+12], castagnoli) != wantSelf {
		return nil, true, &CorruptError{Reason: "trailer checksum mismatch (damaged trailer)"}
	}
	n := binary.LittleEndian.Uint64(t[len(Magic) : len(Magic)+8])
	if n != uint64(len(data)-Size) {
		return nil, true, &CorruptError{Reason: fmt.Sprintf(
			"length mismatch: trailer declares %d payload bytes, file carries %d (truncated or spliced)",
			n, len(data)-Size)}
	}
	payload = data[:len(data)-Size]
	want := binary.LittleEndian.Uint32(t[len(Magic)+8:])
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, true, &CorruptError{Reason: "payload checksum mismatch (bit flip or partial overwrite)"}
	}
	return payload, true, nil
}
