package loops

import (
	"testing"
)

// tg is a test graph with explicit edge frequencies.
type tg struct {
	succs [][]int
	freq  map[[2]int]uint64
}

func (g *tg) NumNodes() int     { return len(g.succs) }
func (g *tg) Succs(n int) []int { return g.succs[n] }
func (g *tg) EdgeFreq(from, to int) uint64 {
	return g.freq[[2]int{from, to}]
}

func newTG(n int) *tg {
	return &tg{succs: make([][]int, n), freq: make(map[[2]int]uint64)}
}

func (g *tg) edge(from, to int, freq uint64) {
	g.succs[from] = append(g.succs[from], to)
	g.freq[[2]int{from, to}] = freq
}

func TestSimpleLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 1, 2 -> 3
	g := newTG(4)
	g.edge(0, 1, 1)
	g.edge(1, 2, 100)
	g.edge(2, 1, 99)
	g.edge(2, 3, 1)
	raw := Find(g)
	if len(raw) != 1 {
		t.Fatalf("loops = %d, want 1", len(raw))
	}
	l := raw[0]
	if l.Header != 1 || l.Tail != 2 || l.BackEdgeFreq != 99 {
		t.Errorf("loop = %+v", l)
	}
	if !l.Blocks[1] || !l.Blocks[2] || l.Blocks[0] || l.Blocks[3] {
		t.Errorf("blocks = %v", l.Blocks)
	}
}

func TestNestedDistinctHeaders(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 -> 2 (inner), 3 -> 4 -> 1 (outer), 4 -> 5
	g := newTG(6)
	g.edge(0, 1, 1)
	g.edge(1, 2, 10)
	g.edge(2, 3, 1000)
	g.edge(3, 2, 990)
	g.edge(3, 4, 10)
	g.edge(4, 1, 9)
	g.edge(4, 5, 1)
	raw := Find(g)
	if len(raw) != 2 {
		t.Fatalf("loops = %d, want 2", len(raw))
	}
	merged := Merge(raw, DefaultThreshold)
	if len(merged) != 2 {
		t.Fatalf("merged = %d, want 2", len(merged))
	}
	var inner, outer *Loop
	for _, l := range merged {
		if l.Header == 2 {
			inner = l
		}
		if l.Header == 1 {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatal("missing loops")
	}
	if inner.Parent == -1 || merged[inner.Parent] != outer {
		t.Error("inner loop's parent should be the outer loop")
	}
	if outer.Parent != -1 || outer.Depth != 0 || inner.Depth != 1 {
		t.Errorf("hierarchy: outer parent %d, depths %d/%d",
			outer.Parent, outer.Depth, inner.Depth)
	}
}

// fig6 builds the paper's figure 6 scenario: five back edges sharing the
// header (node 1), of which three are control paths of the outer loop and
// two (X, Y) are genuinely nested.
//
//	0 -> 1; 1 -> 5 -> (1 | 6); 6 -> (1 | 2); 2 -> (1 | 3 | 4); 3 -> 1; 4 -> 1
//	1 -> 7 (exit)
//
// Natural loops (all header 1): X={1,5} freq 2000, Y={1,5,6} freq 300,
// C={1,2,5,6} freq 50, A={1,2,3,5,6} freq 10, B={1,2,4,5,6} freq 12.
func fig6() *tg {
	g := newTG(8)
	g.edge(0, 1, 1)
	g.edge(1, 5, 2373)
	g.edge(1, 7, 1)
	g.edge(5, 1, 2000) // back edge X
	g.edge(5, 6, 373)
	g.edge(6, 1, 300) // back edge Y
	g.edge(6, 2, 73)
	g.edge(2, 1, 50) // back edge C
	g.edge(2, 3, 10)
	g.edge(2, 4, 12)
	g.edge(3, 1, 10) // back edge A
	g.edge(4, 1, 12) // back edge B
	return g
}

func TestFig6NaturalLoops(t *testing.T) {
	raw := Find(fig6())
	if len(raw) != 5 {
		t.Fatalf("natural loops = %d, want 5", len(raw))
	}
	sizes := map[int]uint64{} // body size -> freq
	for _, l := range raw {
		if l.Header != 1 {
			t.Errorf("loop header %d, want shared header 1", l.Header)
		}
		sizes[len(l.Blocks)] = l.BackEdgeFreq
	}
	want := map[int]uint64{2: 2000, 3: 300, 4: 50, 5: 10} // 5-block appears twice
	for size, freq := range want {
		if size == 5 {
			continue
		}
		if sizes[size] != freq {
			t.Errorf("loop of %d blocks has freq %d, want %d", size, sizes[size], freq)
		}
	}
}

// TestLoopMergeFig6 reproduces Table I: Algorithm 2 peels the five
// same-header loops into three program loops over three iterations, with X
// and Y recognized as nested.
func TestLoopMergeFig6(t *testing.T) {
	raw := Find(fig6())
	merged := Merge(raw, DefaultThreshold)
	if len(merged) != 3 {
		t.Fatalf("merged loops = %d, want 3 (Table I)", len(merged))
	}
	// Outermost: A+B+C merged, blocks {1,2,3,4,5,6}, freq 72.
	// Middle: Y, blocks {1,5,6}, freq 300.
	// Innermost: X, blocks {1,5}, freq 2000.
	bySize := map[int]*Loop{}
	for _, l := range merged {
		bySize[len(l.Blocks)] = l
	}
	outer, mid, inner := bySize[6], bySize[3], bySize[2]
	if outer == nil || mid == nil || inner == nil {
		t.Fatalf("unexpected loop sizes: %v", bySize)
	}
	if outer.BackEdgeFreq != 72 {
		t.Errorf("outer freq = %d, want 72 (10+12+50)", outer.BackEdgeFreq)
	}
	if len(outer.Tails) != 3 {
		t.Errorf("outer tails = %v, want 3 merged back edges", outer.Tails)
	}
	if mid.BackEdgeFreq != 300 || inner.BackEdgeFreq != 2000 {
		t.Errorf("freqs: mid %d inner %d", mid.BackEdgeFreq, inner.BackEdgeFreq)
	}
	// Hierarchy: inner ⊂ mid ⊂ outer.
	if inner.Depth != 2 || mid.Depth != 1 || outer.Depth != 0 {
		t.Errorf("depths: %d %d %d", inner.Depth, mid.Depth, outer.Depth)
	}
	if merged[inner.Parent] != mid || merged[mid.Parent] != outer {
		t.Error("parent chain wrong")
	}
}

// With T=1 the nested-detection bar lowers: C (freq 50 >= 10+12) now also
// counts as nested, so the group splits into four loops. With a huge T
// everything same-header merges into one loop.
func TestThresholdSweep(t *testing.T) {
	raw := Find(fig6())
	if got := len(Merge(raw, 1)); got != 4 {
		t.Errorf("T=1: %d loops, want 4", got)
	}
	if got := len(Merge(raw, 1000)); got != 1 {
		t.Errorf("T=1000: %d loops, want 1 (all merged)", got)
	}
	one := Merge(raw, 1000)[0]
	if one.BackEdgeFreq != 2372 {
		t.Errorf("fully merged freq = %d, want 2372", one.BackEdgeFreq)
	}
}

// A continue-style frequent control path must merge, not split: two back
// edges, same header, neither a subset with dominant frequency.
func TestContinuePathMerges(t *testing.T) {
	// 0 -> 1 -> 2 -> (3 | 1 "continue"), 3 -> 1, 1 -> 4
	g := newTG(5)
	g.edge(0, 1, 1)
	g.edge(1, 2, 100)
	g.edge(1, 4, 1)
	g.edge(2, 1, 60) // continue path
	g.edge(2, 3, 40)
	g.edge(3, 1, 40)
	raw := Find(g)
	if len(raw) != 2 {
		t.Fatalf("raw loops = %d", len(raw))
	}
	merged := Merge(raw, DefaultThreshold)
	if len(merged) != 1 {
		t.Fatalf("merged = %d, want 1 (continue is a control path)", len(merged))
	}
	if merged[0].BackEdgeFreq != 100 {
		t.Errorf("freq = %d, want 100", merged[0].BackEdgeFreq)
	}
}

// A genuinely hot nested loop sharing the header splits off.
func TestSharedHeaderNestedSplits(t *testing.T) {
	// inner {1,2} spins 50x per outer iteration.
	g := newTG(5)
	g.edge(0, 1, 1)
	g.edge(1, 2, 510)
	g.edge(2, 1, 500) // inner back edge, hot
	g.edge(2, 3, 10)
	g.edge(3, 1, 9) // outer back edge
	g.edge(3, 4, 1)
	raw := Find(g)
	if len(raw) != 2 {
		t.Fatalf("raw = %d", len(raw))
	}
	merged := Merge(raw, DefaultThreshold)
	if len(merged) != 2 {
		t.Fatalf("merged = %d, want 2 (nested split)", len(merged))
	}
}

func TestNoLoops(t *testing.T) {
	g := newTG(3)
	g.edge(0, 1, 5)
	g.edge(1, 2, 5)
	if raw := Find(g); len(raw) != 0 {
		t.Errorf("acyclic graph produced %d loops", len(raw))
	}
	if merged := Merge(nil, DefaultThreshold); len(merged) != 0 {
		t.Errorf("Merge(nil) = %d", len(merged))
	}
}

func TestSelfLoop(t *testing.T) {
	g := newTG(3)
	g.edge(0, 1, 1)
	g.edge(1, 1, 42)
	g.edge(1, 2, 1)
	raw := Find(g)
	if len(raw) != 1 || raw[0].Header != 1 || raw[0].Tail != 1 {
		t.Fatalf("self loop not found: %+v", raw)
	}
	if len(raw[0].Blocks) != 1 || raw[0].BackEdgeFreq != 42 {
		t.Errorf("self loop = %+v", raw[0])
	}
}

// Property: every merged loop's header belongs to its block set, and every
// loop's blocks are a superset of each of its children's.
func TestHierarchyInvariants(t *testing.T) {
	for _, g := range []*tg{fig6()} {
		merged := Merge(Find(g), DefaultThreshold)
		for i, l := range merged {
			if !l.Blocks[l.Header] {
				t.Errorf("loop %d: header not in blocks", i)
			}
			if l.Parent != -1 {
				p := merged[l.Parent]
				for b := range l.Blocks {
					if !p.Blocks[b] {
						t.Errorf("loop %d: block %d missing from parent", i, b)
					}
				}
			}
		}
	}
}

// MergeGroupTrace must agree with Merge and expose the Table I iteration
// structure: 3 iterations peeling 3/1/1 loops.
func TestMergeGroupTraceFig6(t *testing.T) {
	raw := Find(fig6())
	merged, trace := MergeGroupTrace(raw, DefaultThreshold)
	if len(merged) != 3 {
		t.Fatalf("merged = %d", len(merged))
	}
	if len(trace) != 3 {
		t.Fatalf("iterations = %d, want 3 (Table I)", len(trace))
	}
	wantPeeled := []int{3, 1, 1}
	for i, it := range trace {
		if len(it.Peeled) != wantPeeled[i] {
			t.Errorf("iteration %d peeled %d loops, want %d", i+1, len(it.Peeled), wantPeeled[i])
		}
		if len(it.Considered) != len(it.Peeled)+len(it.Kept) {
			t.Errorf("iteration %d: considered != peeled + kept", i+1)
		}
	}
	// Must match plain Merge.
	plain := Merge(raw, DefaultThreshold)
	if len(plain) != len(merged) {
		t.Error("trace variant diverged from Merge")
	}
}
