// Package loops finds natural loops in a function's CFG via dominance
// analysis and applies the paper's loop-merging heuristic (§IV-E,
// Algorithm 2) to decide whether back edges sharing a header are nested
// loops or alternative control paths of the same loop.
package loops

import (
	"context"
	"sort"

	"optiwise/internal/dom"
	"optiwise/internal/obs"
)

// DefaultThreshold is T in Algorithm 2: a same-header loop is considered
// nested only if its back-edge frequency is at least T times the summed
// frequency of its supersets. The paper chooses 3 from case-study
// experience.
const DefaultThreshold = 3

// Raw is one natural loop, before merging: exactly one back edge.
type Raw struct {
	Header int
	Tail   int
	// Blocks contains every node of the loop, including the header.
	Blocks map[int]bool
	// BackEdgeFreq is the dynamic count of the back edge.
	BackEdgeFreq uint64
}

// Graph extends dom.Graph with edge frequencies.
type Graph interface {
	dom.Graph
	// EdgeFreq returns the dynamic count of the edge from→to.
	EdgeFreq(from, to int) uint64
}

// Find returns the natural loops of g, one per back edge, using the
// conventional definitions (§II-C): an edge u→v is a back edge iff v
// dominates u; its loop contains v plus all nodes that reach u without
// passing through v.
func Find(g Graph) []*Raw {
	return FindCtx(context.Background(), g)
}

// FindCtx is Find with explicit span parenting: the dominators span
// opens under the span carried by ctx (falling back to the ambient
// tracer), so per-function loop discovery fanned out across worker
// shards lands under its caller's span instead of whichever span the
// global open-span stack happens to hold.
func FindCtx(ctx context.Context, g Graph) []*Raw {
	span := obs.StartCtx(ctx, "dominators").SetAttr("nodes", g.NumNodes())
	t := dom.Compute(g)
	span.End()
	obs.Counter(obs.MDomComputations).Inc()
	var out []*Raw
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		if !t.Reachable(u) {
			continue
		}
		for _, v := range g.Succs(u) {
			if !t.Reachable(v) || !t.Dominates(v, u) {
				continue
			}
			out = append(out, naturalLoop(g, v, u))
		}
	}
	// Deterministic order: by header, then tail.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Header != out[j].Header {
			return out[i].Header < out[j].Header
		}
		return out[i].Tail < out[j].Tail
	})
	return out
}

// naturalLoop collects the loop body of back edge tail→header: reverse
// reachability from the tail, stopping at the header.
func naturalLoop(g Graph, header, tail int) *Raw {
	l := &Raw{
		Header:       header,
		Tail:         tail,
		Blocks:       map[int]bool{header: true},
		BackEdgeFreq: g.EdgeFreq(tail, header),
	}
	// Predecessor map on demand.
	preds := make([][]int, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Succs(u) {
			preds[v] = append(preds[v], u)
		}
	}
	work := []int{tail}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if l.Blocks[n] {
			continue
		}
		l.Blocks[n] = true
		work = append(work, preds[n]...)
	}
	return l
}

// Loop is a merged loop: possibly several back edges (control paths)
// folded into one programmer-intuitive loop.
type Loop struct {
	Header int
	// Blocks is the union of the merged natural loops' bodies.
	Blocks map[int]bool
	// BackEdgeFreq is the sum of the merged back edges' frequencies.
	BackEdgeFreq uint64
	// Tails lists the merged back edges' sources.
	Tails []int
	// Parent is the index (into the Merge result) of the innermost
	// enclosing loop, or -1.
	Parent int
	// Depth is the nesting depth (0 for outermost).
	Depth int
}

// Contains reports whether node n belongs to the loop.
func (l *Loop) Contains(n int) bool { return l.Blocks[n] }

// Merge applies Algorithm 2 with threshold t to every group of natural
// loops sharing a header, and derives the nesting hierarchy of the result.
func Merge(raw []*Raw, t uint64) []*Loop {
	byHeader := make(map[int][]*Raw)
	var headers []int
	for _, r := range raw {
		if len(byHeader[r.Header]) == 0 {
			headers = append(headers, r.Header)
		}
		byHeader[r.Header] = append(byHeader[r.Header], r)
	}
	sort.Ints(headers)

	var out []*Loop
	for _, h := range headers {
		out = append(out, mergeGroup(byHeader[h], t)...)
	}
	buildHierarchy(out)
	return out
}

// IterationTrace records one while-iteration of Algorithm 2 for a group of
// same-header loops — the content of the paper's Table I.
type IterationTrace struct {
	// Considered lists (size, backEdgeFreq) of the loops still in
	// inner_loops at the start of the iteration.
	Considered []RawSummary
	// Peeled lists the loops moved to current_loop (merged and output).
	Peeled []RawSummary
	// Kept lists the loops recognized as nested and kept for the next
	// iteration.
	Kept []RawSummary
}

// RawSummary is a compact description of one natural loop in a trace.
type RawSummary struct {
	Tail         int
	Size         int
	BackEdgeFreq uint64
}

// MergeGroupTrace runs Algorithm 2 on one same-header group and returns
// both the merged loops and the per-iteration trace (Table I).
func MergeGroupTrace(group []*Raw, t uint64) ([]*Loop, []IterationTrace) {
	inner := make([]*Raw, len(group))
	copy(inner, group)
	sort.SliceStable(inner, func(i, j int) bool {
		return len(inner[i].Blocks) < len(inner[j].Blocks)
	})
	var out []*Loop
	var trace []IterationTrace
	for len(inner) > 0 {
		var it IterationTrace
		for _, r := range inner {
			it.Considered = append(it.Considered, summarize(r))
		}
		var current, remaining []*Raw
		for _, i := range inner {
			var freqSum uint64
			for _, j := range inner {
				if i != j && isStrictSubset(i.Blocks, j.Blocks) {
					freqSum += j.BackEdgeFreq
				}
			}
			if freqSum == 0 || t*freqSum > i.BackEdgeFreq {
				current = append(current, i)
				it.Peeled = append(it.Peeled, summarize(i))
			} else {
				remaining = append(remaining, i)
				it.Kept = append(it.Kept, summarize(i))
			}
		}
		if len(current) == 0 {
			current, remaining = remaining, nil
		}
		merged := &Loop{Header: current[0].Header, Blocks: make(map[int]bool), Parent: -1}
		for _, r := range current {
			merged.BackEdgeFreq += r.BackEdgeFreq
			merged.Tails = append(merged.Tails, r.Tail)
			for b := range r.Blocks {
				merged.Blocks[b] = true
			}
		}
		sort.Ints(merged.Tails)
		out = append(out, merged)
		trace = append(trace, it)
		inner = remaining
	}
	buildHierarchy(out)
	return out, trace
}

func summarize(r *Raw) RawSummary {
	return RawSummary{Tail: r.Tail, Size: len(r.Blocks), BackEdgeFreq: r.BackEdgeFreq}
}

// mergeGroup is Algorithm 2: iteratively peel the outermost program loop
// from a set of same-header natural loops.
func mergeGroup(group []*Raw, t uint64) []*Loop {
	inner := make([]*Raw, len(group))
	copy(inner, group)
	// sort_size_ascending
	sort.SliceStable(inner, func(i, j int) bool {
		return len(inner[i].Blocks) < len(inner[j].Blocks)
	})

	var out []*Loop
	for len(inner) > 0 {
		var current []*Raw
		var remaining []*Raw
		for _, i := range inner {
			var freqSum uint64
			for _, j := range inner {
				if i != j && isStrictSubset(i.Blocks, j.Blocks) {
					freqSum += j.BackEdgeFreq
				}
			}
			if freqSum == 0 || t*freqSum > i.BackEdgeFreq {
				current = append(current, i)
			} else {
				remaining = append(remaining, i)
			}
		}
		if len(current) == 0 {
			// Cannot happen: the largest loop always has freqSum == 0.
			// Guard against pathological equal-block sets.
			current, remaining = remaining, nil
		}
		merged := &Loop{
			Header: current[0].Header,
			Blocks: make(map[int]bool),
			Parent: -1,
		}
		for _, r := range current {
			merged.BackEdgeFreq += r.BackEdgeFreq
			merged.Tails = append(merged.Tails, r.Tail)
			for b := range r.Blocks {
				merged.Blocks[b] = true
			}
		}
		sort.Ints(merged.Tails)
		out = append(out, merged)
		inner = remaining
	}
	return out
}

func isStrictSubset(a, b map[int]bool) bool {
	if len(a) >= len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// buildHierarchy fills Parent and Depth: the parent is the smallest other
// loop whose block set is a superset (strict, or equal with the parent
// having been emitted earlier, which Algorithm 2 guarantees for peeled
// same-header nests).
func buildHierarchy(ls []*Loop) {
	for i, l := range ls {
		best := -1
		for j, p := range ls {
			if i == j {
				continue
			}
			if !isSubsetAllowEqual(l.Blocks, p.Blocks, i, j) {
				continue
			}
			if best == -1 || len(p.Blocks) < len(ls[best].Blocks) {
				best = j
			}
		}
		l.Parent = best
	}
	for i := range ls {
		d := 0
		for p := ls[i].Parent; p != -1; p = ls[p].Parent {
			d++
			if d > len(ls) { // cycle guard (equal sets)
				break
			}
		}
		ls[i].Depth = d
	}
}

// isSubsetAllowEqual reports whether a ⊆ b, treating exactly equal sets as
// nested only when the candidate parent appears earlier (peeled first,
// i.e. outermost).
func isSubsetAllowEqual(a, b map[int]bool, ai, bi int) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	if len(a) == len(b) {
		return bi < ai
	}
	return true
}
