package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"optiwise/internal/fault"
	"optiwise/internal/obs"
	"optiwise/internal/serve"
)

// cmdServe runs the long-lived profiling service: an HTTP JSON API in
// front of a bounded job queue, a fixed worker pool, and a
// content-addressed result cache. SIGINT/SIGTERM trigger a graceful
// drain: queued and in-flight jobs complete, new submissions get 503.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	addrFile := fs.String("addr-file", "", "write the bound address (host:port) to this file once listening; with -addr :0 this is the reliable way for scripts to discover the port")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue", 64, "bounded job-queue depth")
	cacheMB := fs.Int64("cache-mb", 256, "result-cache budget in MiB (negative disables)")
	timeout := fs.Duration("timeout", 60*time.Second, "default per-job deadline")
	maxTimeout := fs.Duration("max-timeout", 10*time.Minute, "cap on client-chosen deadlines")
	maxCycles := fs.Int64("max-cycles", 1<<32, "per-execution cycle bound (negative disables)")
	drainWait := fs.Duration("drain", 2*time.Minute, "max time to drain jobs on shutdown")
	retries := fs.Int("retries", 0, "transient-failure retry budget per job (0 = default 2, negative disables)")
	faultSpec := fs.String("fault", "", "server-wide fault-injection spec (chaos testing; also OPTIWISE_FAULT)")
	flightDir := fs.String("flight-dir", "", "directory for flight-recorder dumps (panics, failed jobs, degraded results, SIGQUIT); empty keeps dumps in memory only")
	flightSize := fs.Int("flight-size", 0, "flight-recorder ring capacity in records (0 = default 4096, negative disables)")
	obsCfg := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments")
	}
	if *faultSpec != "" {
		if err := fault.Activate(*faultSpec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "optiwise: fault injection active: %s\n", *faultSpec)
	}
	flush, err := obsCfg.Activate()
	if err != nil {
		return err
	}
	// The service exports live metrics at /metrics; give it a registry
	// even when no -metrics file was requested.
	if obs.ActiveRegistry() == nil {
		obs.SetRegistry(obs.NewRegistry())
	}

	// The serve daemon keeps its flight recorder (the crash "black box")
	// on by default: -flight-size 0 means the default ring, and only a
	// negative size opts out.
	if *flightSize == 0 {
		*flightSize = obs.DefaultFlightRecorderSize
	}
	srv := serve.New(serve.Config{
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		CacheBytes:         *cacheMB << 20,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxJobCycles:       *maxCycles,
		RetryBudget:        *retries,
		FlightDumpDir:      *flightDir,
		FlightRecorderSize: *flightSize,
	})
	srv.Start()

	// SIGQUIT snapshots the flight recorder without killing the server:
	// the operator's "what just happened" lever. (Go's default SIGQUIT
	// goroutine-dump-and-exit is traded for this; use -flight-size -1 to
	// keep the runtime default.)
	if *flightSize > 0 {
		quitc := make(chan os.Signal, 1)
		signal.Notify(quitc, syscall.SIGQUIT)
		go func() {
			for range quitc {
				if d, ok := srv.DumpFlight("sigquit"); ok {
					fmt.Fprintf(os.Stderr, "optiwise: SIGQUIT flight dump: %d records at %s\n",
						len(d.Records), d.TakenAt.Format(time.RFC3339Nano))
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		// Write-then-rename so a watching script never reads a partial
		// address: the file appears atomically, fully written, only
		// after the listener is bound.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("serve: write -addr-file: %w", err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			ln.Close()
			return fmt.Errorf("serve: write -addr-file: %w", err)
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "optiwise: serving on http://%s (workers=%d queue=%d)\n",
		ln.Addr(), srv.Config().Workers, srv.Config().QueueDepth)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "optiwise: %s received, draining\n", sig)
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "optiwise: drained, exiting")
	return flush()
}

// cmdSubmit sends one program to a running profiling service and
// prints the selected report.
func cmdSubmit(args []string) error {
	c := newFlags("submit")
	fs := c.fs
	addr := fs.String("addr", "http://127.0.0.1:8077", "service base URL")
	kind := fs.String("report", "full", "report kind: full, functions, loops, annotated, callgraph, csv, loops-csv, json")
	fn := fs.String("func", "", "function for -report annotated (default: hottest)")
	timeout := fs.Duration("timeout", 0, "per-job deadline (0 = server default)")
	poll := fs.Bool("poll", false, "poll job status instead of a blocking submit")
	traceID := fs.String("trace-id", "", "propagate a caller-chosen trace ID (32 lowercase hex digits; default: server-minted)")
	traceOut := fs.String("trace-out", "", "after completion, download the job's Chrome trace JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := c.options()
	if err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("submit wants exactly one program file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	req := map[string]any{
		"machine": opts.Machine.Name,
		"options": map[string]any{
			"sample_period":    opts.SamplePeriod,
			"precise":          opts.Precise,
			"no_stack":         opts.DisableStackProfiling,
			"loop_threshold":   opts.LoopThreshold,
			"attribution":      *c.attr,
			"allow_degraded":   opts.AllowDegraded,
			"telemetry_window": opts.TelemetryWindow,
		},
		"wait": !*poll,
	}
	if *traceID != "" {
		req["trace_id"] = *traceID
	}
	if *timeout > 0 {
		req["timeout_ms"] = timeout.Milliseconds()
	}
	if len(data) >= 4 && string(data[:4]) == "OWX\x01" {
		req["binary"] = data
	} else {
		req["module"] = moduleName(fs.Arg(0))
		req["source"] = string(data)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(*addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	st, err := decodeJobStatus(resp)
	if err != nil {
		return err
	}
	if *poll {
		for !st.State.Terminal() {
			time.Sleep(200 * time.Millisecond)
			r, err := http.Get(*addr + "/v1/jobs/" + st.ID)
			if err != nil {
				return err
			}
			if st, err = decodeJobStatus(r); err != nil {
				return err
			}
		}
	}
	if st.State != serve.StateDone {
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	if st.Degraded {
		fmt.Fprintf(os.Stderr, "optiwise: warning: degraded result (%s pass failed)\n", st.FailedPass)
	}
	if *traceOut != "" {
		if err := fetchTrace(*addr, st.ID, *traceOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "optiwise: wrote Chrome trace for job %s (trace %s) to %s\n",
			st.ID, st.TraceID, *traceOut)
	}
	url := *addr + "/v1/jobs/" + st.ID + "/report?kind=" + *kind
	if *fn != "" {
		url += "&func=" + *fn
	}
	rep, err := http.Get(url)
	if err != nil {
		return err
	}
	defer rep.Body.Close()
	if rep.StatusCode != http.StatusOK {
		return fmt.Errorf("report: %s", readAPIError(rep))
	}
	_, err = io.Copy(os.Stdout, rep.Body)
	return err
}

// fetchTrace downloads GET /v1/jobs/{id}/trace into path.
func fetchTrace(addr, id, path string) error {
	resp, err := http.Get(addr + "/v1/jobs/" + id + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace: %s", readAPIError(resp))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// decodeJobStatus parses a job-status response, converting API error
// payloads into Go errors.
func decodeJobStatus(resp *http.Response) (serve.JobStatus, error) {
	defer resp.Body.Close()
	var st serve.JobStatus
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return st, fmt.Errorf("service: %s", readAPIError(resp))
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("decode status: %w", err)
	}
	return st, nil
}

// readAPIError extracts the {"error": ...} payload, falling back to
// the HTTP status line.
func readAPIError(resp *http.Response) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e); err == nil && e.Error != "" {
		return fmt.Sprintf("%s (%s)", e.Error, resp.Status)
	}
	return resp.Status
}
