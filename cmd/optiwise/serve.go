package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"optiwise/internal/cluster"
	"optiwise/internal/durable"
	"optiwise/internal/fault"
	"optiwise/internal/obs"
	"optiwise/internal/serve"
)

// exitDrainForced is the serve exit code when the -drain deadline
// expired before all jobs finished: the process still exits, but the
// operator (and any supervisor) can tell a forced exit from a clean
// drain (0) and from ordinary errors (1).
const exitDrainForced = 3

// drainForcedError marks a shutdown cut short by the drain deadline.
// main maps it to exitDrainForced via the ExitCode method.
type drainForcedError struct{ err error }

func (e *drainForcedError) Error() string {
	return fmt.Sprintf("serve: drain deadline forced exit: %v", e.err)
}
func (e *drainForcedError) Unwrap() error { return e.err }
func (e *drainForcedError) ExitCode() int { return exitDrainForced }

// cmdServe runs the long-lived profiling service: an HTTP JSON API in
// front of a bounded job queue, a fixed worker pool, and a
// content-addressed result cache. SIGINT/SIGTERM trigger a graceful
// drain: queued and in-flight jobs complete, new submissions get 503.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	addrFile := fs.String("addr-file", "", "write the bound address (host:port) to this file once listening; with -addr :0 this is the reliable way for scripts to discover the port")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue", 64, "bounded job-queue depth")
	cacheMB := fs.Int64("cache-mb", 256, "result-cache budget in MiB (negative disables)")
	timeout := fs.Duration("timeout", 60*time.Second, "default per-job deadline")
	maxTimeout := fs.Duration("max-timeout", 10*time.Minute, "cap on client-chosen deadlines")
	maxCycles := fs.Int64("max-cycles", 1<<32, "per-execution cycle bound (negative disables)")
	drainWait := fs.Duration("drain", 2*time.Minute, "max time to drain jobs on shutdown; exceeding it forces exit code 3")
	dataDir := fs.String("data-dir", "", "durable state directory (WAL job journal, result segments, stream checkpoints); empty keeps all state in memory")
	retries := fs.Int("retries", 0, "transient-failure retry budget per job (0 = default 2, negative disables)")
	faultSpec := fs.String("fault", "", "server-wide fault-injection spec (chaos testing; also OPTIWISE_FAULT)")
	flightDir := fs.String("flight-dir", "", "directory for flight-recorder dumps (panics, failed jobs, degraded results, SIGQUIT); empty keeps dumps in memory only")
	flightSize := fs.Int("flight-size", 0, "flight-recorder ring capacity in records (0 = default 4096, negative disables)")
	role := fs.String("role", "", "cluster role: router, worker, or both (empty = single-node unless -peers/-peers-file given, then both)")
	peers := fs.String("peers", "", "comma-separated sibling addresses (host:port) forming a profiling cluster")
	peersFile := fs.String("peers-file", "", "file of sibling addresses (one host:port per line), re-read periodically — use when peer ports are assigned late")
	advertise := fs.String("advertise", "", "address peers should reach this node at (default: the bound listen address)")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "cluster membership probe cadence")
	ui := fs.Bool("ui", true, "serve the embedded dashboard at /ui/")
	obsCfg := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments")
	}
	if *faultSpec != "" {
		if err := fault.Activate(*faultSpec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "optiwise: fault injection active: %s\n", *faultSpec)
	}
	flush, err := obsCfg.Activate()
	if err != nil {
		return err
	}
	// The service exports live metrics at /metrics; give it a registry
	// even when no -metrics file was requested.
	if obs.ActiveRegistry() == nil {
		obs.SetRegistry(obs.NewRegistry())
	}

	// The serve daemon keeps its flight recorder (the crash "black box")
	// on by default: -flight-size 0 means the default ring, and only a
	// negative size opts out.
	if *flightSize == 0 {
		*flightSize = obs.DefaultFlightRecorderSize
	}
	srv, err := serve.NewDurable(serve.Config{
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		CacheBytes:         *cacheMB << 20,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxJobCycles:       *maxCycles,
		RetryBudget:        *retries,
		FlightDumpDir:      *flightDir,
		FlightRecorderSize: *flightSize,
		DataDir:            *dataDir,
		UI:                 *ui,
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		st := srv.Stats()
		fmt.Fprintf(os.Stderr, "optiwise: durable state in %s (replayed %d journal records, %d truncated, %d cached results)\n",
			*dataDir, st.JournalReplays, st.RecordsTruncated, st.CacheEntries)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	// Cluster mode: any of -role/-peers/-peers-file turns this process
	// into one node of a sharded profiling cluster (DESIGN.md §11). The
	// node must exist before Start so its peer-fetch hook is installed
	// before the first worker dequeues.
	var node *cluster.Node
	clustered := *role != "" || *peers != "" || *peersFile != ""
	if clustered {
		r, err := cluster.ParseRole(*role)
		if err != nil {
			ln.Close()
			return err
		}
		self := *advertise
		if self == "" {
			self = ln.Addr().String()
		}
		node, err = cluster.New(cluster.Config{
			Self:          self,
			Role:          r,
			Peers:         splitAddrs(*peers),
			PeersFile:     *peersFile,
			ProbeInterval: *probeInterval,
		}, srv)
		if err != nil {
			ln.Close()
			return err
		}
	}
	srv.Start()

	// SIGQUIT snapshots the flight recorder without killing the server:
	// the operator's "what just happened" lever. (Go's default SIGQUIT
	// goroutine-dump-and-exit is traded for this; use -flight-size -1 to
	// keep the runtime default.)
	if *flightSize > 0 {
		quitc := make(chan os.Signal, 1)
		signal.Notify(quitc, syscall.SIGQUIT)
		go func() {
			for range quitc {
				if d, ok := srv.DumpFlight("sigquit"); ok {
					fmt.Fprintf(os.Stderr, "optiwise: SIGQUIT flight dump: %d records at %s\n",
						len(d.Records), d.TakenAt.Format(time.RFC3339Nano))
				}
			}
		}()
	}

	if *addrFile != "" {
		// Atomic temp+rename+fsync so a watching script never reads a
		// partial address: the file appears fully written, only after
		// the listener is bound, and survives a crash right after.
		if err := durable.AtomicWrite(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("serve: write -addr-file: %w", err)
		}
	}
	handler := srv.Handler()
	if node != nil {
		handler = node.Handler()
	}
	httpSrv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	if node != nil {
		node.Start()
		fmt.Fprintf(os.Stderr, "optiwise: serving on http://%s as cluster node (workers=%d queue=%d ring=%d)\n",
			ln.Addr(), srv.Config().Workers, srv.Config().QueueDepth, node.Ring().Size())
	} else {
		fmt.Fprintf(os.Stderr, "optiwise: serving on http://%s (workers=%d queue=%d)\n",
			ln.Addr(), srv.Config().Workers, srv.Config().QueueDepth)
	}
	if *ui {
		fmt.Fprintf(os.Stderr, "optiwise: dashboard at http://%s/ui/\n", ln.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "optiwise: %s received, draining\n", sig)
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if node != nil {
		node.Shutdown()
	}
	drainErr := srv.Shutdown(ctx)
	httpErr := httpSrv.Shutdown(ctx)
	// Final flight dump: the black box's last words, taken after the
	// drain so a forced exit records which jobs were cut short. With a
	// -flight-dir it lands on disk next to the crash dumps.
	if *flightSize > 0 {
		if d, ok := srv.DumpFlight("shutdown"); ok {
			fmt.Fprintf(os.Stderr, "optiwise: shutdown flight dump: %d records at %s\n",
				len(d.Records), d.TakenAt.Format(time.RFC3339Nano))
		}
	}
	if drainErr != nil {
		return &drainForcedError{drainErr}
	}
	if httpErr != nil {
		return &drainForcedError{httpErr}
	}
	fmt.Fprintln(os.Stderr, "optiwise: drained, exiting")
	return flush()
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// apiClient talks to a profiling service through one or more base URLs
// with connection-error failover: every request walks the address list
// starting from the last base that answered, so a killed cluster node
// costs one retry, not a failed submission. HTTP error statuses are
// answers, not failures — only transport errors fail over.
type apiClient struct {
	addrs []string
	cur   int
}

func newAPIClient(addrList string) (*apiClient, error) {
	addrs := splitAddrs(addrList)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("no service address given")
	}
	for i, a := range addrs {
		if !strings.Contains(a, "://") {
			addrs[i] = "http://" + a
		}
	}
	return &apiClient{addrs: addrs}, nil
}

// do runs f against base URLs until one answers.
func (c *apiClient) do(f func(base string) (*http.Response, error)) (*http.Response, error) {
	var lastErr error
	for i := 0; i < len(c.addrs); i++ {
		idx := (c.cur + i) % len(c.addrs)
		resp, err := f(c.addrs[idx])
		if err == nil {
			c.cur = idx
			return resp, nil
		}
		lastErr = err
		if len(c.addrs) > 1 {
			fmt.Fprintf(os.Stderr, "optiwise: %s unreachable (%v), failing over\n", c.addrs[idx], err)
		}
	}
	return nil, lastErr
}

// base returns the URL of the last service address that answered.
func (c *apiClient) base() string { return c.addrs[c.cur] }

func (c *apiClient) get(path string) (*http.Response, error) {
	return c.do(func(base string) (*http.Response, error) { return http.Get(base + path) })
}

func (c *apiClient) post(path string, body []byte) (*http.Response, error) {
	return c.do(func(base string) (*http.Response, error) {
		return http.Post(base+path, "application/json", bytes.NewReader(body))
	})
}

// cmdSubmit sends one program to a running profiling service and
// prints the selected report.
func cmdSubmit(args []string) error {
	c := newFlags("submit")
	fs := c.fs
	addr := fs.String("addr", "http://127.0.0.1:8077", "service base URL, or a comma-separated list tried in order on connection failure (cluster frontends)")
	kind := fs.String("report", "full", "report kind: full, functions, loops, annotated, callgraph, csv, loops-csv, json")
	fn := fs.String("func", "", "function for -report annotated (default: hottest)")
	timeout := fs.Duration("timeout", 0, "per-job deadline (0 = server default)")
	stream := fs.Int64("stream", 0, "windowed streaming: cycles per window (0 = off); live snapshots at /v1/jobs/{id}/windows, and durable servers checkpoint each window for crash resume")
	poll := fs.Bool("poll", false, "poll job status instead of a blocking submit")
	traceID := fs.String("trace-id", "", "propagate a caller-chosen trace ID (32 lowercase hex digits; default: server-minted)")
	traceOut := fs.String("trace-out", "", "after completion, download the job's Chrome trace JSON to this file")
	open := fs.Bool("open", false, "print the job's dashboard drill-down URL after submission")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := c.options()
	if err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("submit wants exactly one program file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	req := map[string]any{
		"machine": opts.Machine.Name,
		"options": map[string]any{
			"sample_period":    opts.SamplePeriod,
			"precise":          opts.Precise,
			"no_stack":         opts.DisableStackProfiling,
			"loop_threshold":   opts.LoopThreshold,
			"attribution":      *c.attr,
			"allow_degraded":   opts.AllowDegraded,
			"telemetry_window": opts.TelemetryWindow,
			"tiered":           opts.Tiered,
			"hot_threshold":    opts.HotThreshold,
			"stream_window":    *stream,
		},
		"wait": !*poll,
	}
	if *traceID != "" {
		req["trace_id"] = *traceID
	}
	if *timeout > 0 {
		req["timeout_ms"] = timeout.Milliseconds()
	}
	if len(data) >= 4 && string(data[:4]) == "OWX\x01" {
		req["binary"] = data
	} else {
		req["module"] = moduleName(fs.Arg(0))
		req["source"] = string(data)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	api, err := newAPIClient(*addr)
	if err != nil {
		return err
	}
	resp, err := api.post("/v1/jobs", body)
	if err != nil {
		return err
	}
	st, err := decodeJobStatus(resp)
	if err != nil {
		return err
	}
	if *open {
		fmt.Fprintf(os.Stderr, "optiwise: dashboard: %s/ui/#/jobs/%s\n", api.base(), st.ID)
	}
	if *poll {
		for !st.State.Terminal() {
			time.Sleep(200 * time.Millisecond)
			r, err := api.get("/v1/jobs/" + st.ID)
			if err != nil {
				return err
			}
			if st, err = decodeJobStatus(r); err != nil {
				return err
			}
		}
	}
	if st.State != serve.StateDone {
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	if st.Degraded {
		fmt.Fprintf(os.Stderr, "optiwise: warning: degraded result (%s pass failed)\n", st.FailedPass)
	}
	if *traceOut != "" {
		if err := fetchTrace(api, st.ID, *traceOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "optiwise: wrote Chrome trace for job %s (trace %s) to %s\n",
			st.ID, st.TraceID, *traceOut)
	}
	path := "/v1/jobs/" + st.ID + "/report?kind=" + *kind
	if *fn != "" {
		path += "&func=" + *fn
	}
	rep, err := api.get(path)
	if err != nil {
		return err
	}
	defer rep.Body.Close()
	if rep.StatusCode != http.StatusOK {
		return fmt.Errorf("report: %s", readAPIError(rep))
	}
	_, err = io.Copy(os.Stdout, rep.Body)
	return err
}

// fetchTrace downloads GET /v1/jobs/{id}/trace into path.
func fetchTrace(api *apiClient, id, path string) error {
	resp, err := api.get("/v1/jobs/" + id + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace: %s", readAPIError(resp))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// decodeJobStatus parses a job-status response, converting API error
// payloads into Go errors.
func decodeJobStatus(resp *http.Response) (serve.JobStatus, error) {
	defer resp.Body.Close()
	var st serve.JobStatus
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return st, fmt.Errorf("service: %s", readAPIError(resp))
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("decode status: %w", err)
	}
	return st, nil
}

// readAPIError extracts the {"error": ...} payload, falling back to
// the HTTP status line.
func readAPIError(resp *http.Response) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e); err == nil && e.Error != "" {
		return fmt.Sprintf("%s (%s)", e.Error, resp.Status)
	}
	return resp.Status
}
