package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optiwise/internal/fault"
)

const testProg = `
.func main
main:
    li t0, 200
loop:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    syscall
.endfunc
`

// writeProg drops the test program into a temp dir and returns its path.
func writeProg(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.s")
	if err := os.WriteFile(path, []byte(testProg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// silencing stdout keeps `go test` output readable; the subcommands write
// reports to os.Stdout directly.
func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestCmdRun(t *testing.T) {
	silenceStdout(t)
	path := writeProg(t)
	if err := cmdRun([]string{path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-machine", "n1", "-period", "500", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-csv", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-callgraph", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-func", "main", path}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdRunErrors(t *testing.T) {
	silenceStdout(t)
	path := writeProg(t)
	if err := cmdRun([]string{"-machine", "quantum", path}); err == nil {
		t.Error("bad machine accepted")
	}
	if err := cmdRun([]string{"-attr", "psychic", path}); err == nil {
		t.Error("bad attribution accepted")
	}
	if err := cmdRun([]string{}); err == nil {
		t.Error("missing program accepted")
	}
	if err := cmdRun([]string{"/nonexistent/prog.s"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.s")
	if err := os.WriteFile(bad, []byte("frobnicate"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{bad}); err == nil {
		t.Error("unassemblable file accepted")
	}
}

func TestStagedWorkflow(t *testing.T) {
	silenceStdout(t)
	path := writeProg(t)
	dir := filepath.Dir(path)
	sout := filepath.Join(dir, "s.json")
	eout := filepath.Join(dir, "e.json")
	if err := cmdSample([]string{"-o", sout, path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInstrument([]string{"-o", eout, path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-sample", sout, "-edges", eout, path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-sample", sout, "-edges", eout, "-func", "main", path}); err != nil {
		t.Fatal(err)
	}
	// Missing inputs must fail cleanly.
	if err := cmdAnalyze([]string{"-sample", "/nope.json", "-edges", eout, path}); err == nil {
		t.Error("missing sample file accepted")
	}
}

func TestModuleName(t *testing.T) {
	cases := map[string]string{
		"prog.s":      "prog",
		"/a/b/prog.s": "prog",
		"prog":        "prog",
		"/a/b/c":      "c",
		"x.s":         "x",
	}
	for in, want := range cases {
		if got := moduleName(in); got != want {
			t.Errorf("moduleName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCmdTrace(t *testing.T) {
	silenceStdout(t)
	path := writeProg(t)
	if err := cmdTrace([]string{"-n", "8", "-skip", "50", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrace([]string{"-machine", "n1", "-n", "4", "-skip", "10", path}); err != nil {
		t.Fatal(err)
	}
	// Skipping past the end of the program must fail cleanly.
	if err := cmdTrace([]string{"-skip", "99999999", path}); err == nil {
		t.Error("oversized skip accepted")
	}
}

func TestCmdCompare(t *testing.T) {
	silenceStdout(t)
	oldPath := writeProg(t)
	// "Optimized": half the divides.
	opt := strings.ReplaceAll(testProg, "li t0, 200", "li t0, 100")
	newPath := filepath.Join(t.TempDir(), "new.s")
	if err := os.WriteFile(newPath, []byte(opt), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCompare([]string{oldPath, newPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCompare([]string{oldPath}); err == nil {
		t.Error("compare with one file accepted")
	}
}

// TestCmdCompareRefusesDegradedTiered: a fault-degraded tiered profile
// reaching compare must be refused with an error naming the degraded
// side — a single-pass profile (tiered or not) lacks the data to diff,
// and silently comparing extrapolated estimates would produce
// confidently wrong deltas.
func TestCmdCompareRefusesDegradedTiered(t *testing.T) {
	silenceStdout(t)
	t.Cleanup(func() { fault.Set(nil) })
	oldPath := writeProg(t)
	opt := strings.ReplaceAll(testProg, "li t0, 200", "li t0, 100")
	newPath := filepath.Join(t.TempDir(), "new.s")
	if err := os.WriteFile(newPath, []byte(opt), 0o644); err != nil {
		t.Fatal(err)
	}
	// nth=1 kills only the first (old-side) DBI pass: old degrades to a
	// sampling-only tiered profile, new profiles cleanly.
	err := cmdCompare([]string{
		"-tiered", "-allow-degraded",
		"-fault", "dbi.run:error:nth=1,msg=dbi pass killed",
		oldPath, newPath,
	})
	if err == nil {
		t.Fatal("compare accepted a degraded tiered profile")
	}
	if !strings.Contains(err.Error(), "degraded") || !strings.Contains(err.Error(), "old") {
		t.Errorf("refusal does not name the degraded side: %v", err)
	}
}

func TestCmdRunYAMLAndStream(t *testing.T) {
	silenceStdout(t)
	path := writeProg(t)
	if err := cmdRun([]string{"-yaml", path}); err != nil {
		t.Fatal(err)
	}
	// -stream renders the report from the incrementally combined
	// increments instead of the one-shot result.
	if err := cmdRun([]string{"-stream", "2048", "-period", "300", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-stream", "2048", "-yaml", path}); err != nil {
		t.Fatal(err)
	}
	// Window bounds are validated before profiling starts.
	if err := cmdRun([]string{"-stream", "1", path}); err == nil {
		t.Error("sub-minimum stream window accepted")
	}
}

// TestCmdCompareThresholdGate is the CI-gate acceptance path: compare
// must exit nonzero when a planted regression meets -threshold, report
// cleanly without one, and pass improvements through.
func TestCmdCompareThresholdGate(t *testing.T) {
	silenceStdout(t)
	slowPath := writeProg(t) // div-based hot loop
	// The fast version swaps the div for an addi and runs longer, so
	// both sides collect enough samples to clear the significance floor.
	fast := strings.ReplaceAll(testProg, "div t1, t0, t0", "addi t1, t0, 1")
	fast = strings.ReplaceAll(fast, "li t0, 200", "li t0, 5000")
	fastPath := filepath.Join(t.TempDir(), "fast.s")
	if err := os.WriteFile(fastPath, []byte(fast), 0o644); err != nil {
		t.Fatal(err)
	}
	// Report-only mode never fails, regression or not.
	if err := cmdCompare([]string{"-period", "300", fastPath, slowPath}); err != nil {
		t.Fatal(err)
	}
	// The gate trips on fast→slow...
	err := cmdCompare([]string{"-period", "300", "-threshold", "0.10", fastPath, slowPath})
	if err == nil || !strings.Contains(err.Error(), "CPI regression") {
		t.Errorf("planted regression did not trip the threshold gate: %v", err)
	}
	// ...and passes the improving direction, in JSON mode too.
	if err := cmdCompare([]string{"-period", "300", "-threshold", "0.10", "-json",
		slowPath, fastPath}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdRunJSONAndLoop(t *testing.T) {
	silenceStdout(t)
	path := writeProg(t)
	if err := cmdRun([]string{"-json", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-loop", "0", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-loop", "99", path}); err == nil {
		t.Error("bogus loop id accepted")
	}
}

func TestCmdAsmAndBinaryRun(t *testing.T) {
	silenceStdout(t)
	path := writeProg(t)
	owx := filepath.Join(filepath.Dir(path), "prog.owx")
	if err := cmdAsm([]string{"-o", owx, path}); err != nil {
		t.Fatal(err)
	}
	// Every subcommand must accept the binary image directly.
	if err := cmdRun([]string{owx}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrace([]string{"-n", "4", "-skip", "10", owx}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAsm([]string{"-o", owx}); err == nil {
		t.Error("asm without source accepted")
	}
}

func TestCmdRunEvents(t *testing.T) {
	silenceStdout(t)
	path := writeProg(t)
	if err := cmdRun([]string{"-events", path}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdCFG(t *testing.T) {
	silenceStdout(t)
	path := writeProg(t)
	if err := cmdCFG([]string{"-func", "main", path}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCFG([]string{"-func", "nosuch", path}); err == nil {
		t.Error("unknown function accepted")
	}
}
