// Command optiwise mirrors the paper artifact's command-line tool: it
// profiles an OWISA assembly program on a simulated out-of-order machine
// by sampling and instrumentation, then combines the two profiles into
// granular CPI reports.
//
// Usage:
//
//	optiwise check
//	optiwise run        [flags] prog.s        # sample + instrument + analyze
//	optiwise sample     [flags] -o s.json prog.s
//	optiwise instrument [flags] -o e.json prog.s
//	optiwise analyze    [flags] -sample s.json -edges e.json prog.s
//	optiwise help
//
// Flags (run/sample/instrument/analyze as applicable):
//
//	-machine xeon|n1    simulated processor (default xeon)
//	-period N           sampling period in user cycles (default 2000)
//	-precise            PEBS-style precise sampling
//	-no-stack           disable stack profiling (Algorithm 1)
//	-T N                loop-merging threshold (default 3)
//	-attr auto|none|pred sample attribution mode
//	-func NAME          annotate only this function
//	-csv                emit per-instruction and loop CSV instead of text
//
// Observability flags (all profiling subcommands):
//
//	-trace FILE         Chrome trace-event JSON of the pipeline spans
//	                    (open in chrome://tracing or ui.perfetto.dev)
//	-metrics FILE       Prometheus text exposition of pipeline metrics
//	-log FILE           JSONL structured event log ("-" = stderr)
//	-progress           per-workload progress lines on stderr
//	-pprof ADDR         serve net/http/pprof + expvar on ADDR
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"

	"optiwise"
	"optiwise/internal/fault"
	"optiwise/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// OPTIWISE_FAULT installs a process-wide fault-injection plan before
	// any subcommand runs; the per-command -fault flag layers on top via
	// Options.FaultSpec.
	if err := fault.ActivateFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "optiwise:", err)
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "check":
		fmt.Println("optiwise: simulated machines available: xeon-w2195, neoverse-n1")
		fmt.Println("optiwise: ok")
	case "run", "profile":
		err = cmdRun(args)
	case "sample":
		err = cmdSample(args)
	case "instrument":
		err = cmdInstrument(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "trace":
		err = cmdTrace(args)
	case "compare":
		err = cmdCompare(args)
	case "asm":
		err = cmdAsm(args)
	case "cfg":
		err = cmdCFG(args)
	case "serve":
		err = cmdServe(args)
	case "submit":
		err = cmdSubmit(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "optiwise: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "optiwise:", err)
		// Errors that carry their own exit code (e.g. a drain-deadline
		// forced serve exit) override the generic failure code so
		// supervisors can tell the cases apart.
		var coded interface{ ExitCode() int }
		if errors.As(err, &coded) {
			os.Exit(coded.ExitCode())
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  optiwise check
  optiwise run        [flags] prog.s   (alias: profile)
  optiwise sample     [flags] -o sample.json prog.s
  optiwise instrument [flags] -o edges.json prog.s
  optiwise analyze    [flags] -sample sample.json -edges edges.json prog.s
  optiwise trace      [flags] prog.s   (figure 2-style pipeline diagram)
  optiwise compare    [flags] old.s new.s   (before/after cycle deltas)
  optiwise asm        -o prog.owx prog.s    (assemble to a binary image)
  optiwise cfg        -func NAME prog.s     (Graphviz dot of the CFG)
  optiwise serve      [flags]               (HTTP profiling service)
  optiwise submit     [flags] prog.s        (send a job to a service)
observability flags on every profiling subcommand:
  -trace FILE   Chrome trace-event JSON (chrome://tracing / Perfetto)
  -metrics FILE Prometheus text exposition of pipeline metrics
  -log FILE     JSONL structured event log ("-" = stderr)
  -progress     progress lines on stderr      -pprof ADDR  pprof+expvar server
  -telemetry N  cycle-windowed interval telemetry: report phase summary
                and counter tracks in the -trace Chrome trace
run 'optiwise <cmd> -h' for flags`)
}

// commonFlags registers the flags shared by the profiling subcommands.
type commonFlags struct {
	fs            *flag.FlagSet
	machine       *string
	period        *uint64
	precise       *bool
	noStack       *bool
	thresh        *uint64
	attr          *string
	sequential    *bool
	faultSpec     *string
	allowDegraded *bool
	telemetry     *uint64
	tiered        *bool
	hotThreshold  *float64
	obs           *obs.Config
}

func newFlags(name string) *commonFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &commonFlags{
		fs:            fs,
		machine:       fs.String("machine", "xeon", "simulated machine: xeon or n1"),
		period:        fs.Uint64("period", 2000, "sampling period in user cycles"),
		precise:       fs.Bool("precise", false, "PEBS-style precise sampling"),
		noStack:       fs.Bool("no-stack", false, "disable stack profiling"),
		thresh:        fs.Uint64("T", 3, "loop-merging threshold"),
		attr:          fs.String("attr", "auto", "sample attribution: auto, none, pred"),
		sequential:    fs.Bool("sequential", false, "run the two profiling passes one after the other (identical output; for debugging and timing comparisons)"),
		faultSpec:     fs.String("fault", "", "fault-injection spec, e.g. 'seed=1;dbi.run:error:nth=1' (also OPTIWISE_FAULT)"),
		allowDegraded: fs.Bool("allow-degraded", false, "produce a flagged single-pass report when exactly one profiling pass fails"),
		telemetry:     fs.Uint64("telemetry", 0, "interval-telemetry window in cycles (0 = off): streams IPC, ROB occupancy, mispredict and cache-miss rates, and stall causes per window into the report's phase summary and the -trace counter tracks"),
		tiered:        fs.Bool("tiered", false, "tiered adaptive instrumentation: sample first, instrument only hot code; cold counts are extrapolated and marked '~' in reports"),
		hotThreshold:  fs.Float64("hot-threshold", 0, "tiered-mode hotness cutoff as a fraction of sampled cycle mass (0 = default 0.01); requires -tiered"),
		obs:           obs.BindFlags(fs),
	}
}

// withObs activates the observability configuration (tracer, metrics
// registry, structured logger, pprof server) around body, then flushes
// the -trace/-metrics output files. Flush errors surface unless body
// already failed.
func (c *commonFlags) withObs(body func() error) error {
	flush, err := c.obs.Activate()
	if err != nil {
		return err
	}
	if err := body(); err != nil {
		flush() //nolint:errcheck // body error takes precedence
		return err
	}
	return flush()
}

func (c *commonFlags) options() (optiwise.Options, error) {
	opts := optiwise.Options{
		SamplePeriod:          *c.period,
		Precise:               *c.precise,
		DisableStackProfiling: *c.noStack,
		LoopThreshold:         *c.thresh,
		Sequential:            *c.sequential,
		FaultSpec:             *c.faultSpec,
		AllowDegraded:         *c.allowDegraded,
		TelemetryWindow:       *c.telemetry,
		Tiered:                *c.tiered,
		HotThreshold:          *c.hotThreshold,
	}
	machine, err := optiwise.MachineByName(*c.machine)
	if err != nil {
		return opts, err
	}
	opts.Machine = machine
	switch *c.attr {
	case "auto":
		opts.Attribution = optiwise.AttrAuto
	case "none":
		opts.Attribution = optiwise.AttrNone
	case "pred":
		opts.Attribution = optiwise.AttrPredecessor
	default:
		return opts, fmt.Errorf("unknown attribution %q", *c.attr)
	}
	if err := opts.Validate(); err != nil {
		return opts, err
	}
	return opts, nil
}

func loadProgram(fs *flag.FlagSet) (*optiwise.Program, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one program file, got %d", fs.NArg())
	}
	return loadProgramPath(fs.Arg(0))
}

// loadProgramPath accepts either assembly source (.s) or an assembled OWX
// binary image (anything else is sniffed by magic).
func loadProgramPath(path string) (*optiwise.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= 4 && string(data[:4]) == "OWX\x01" {
		return optiwise.ReadBinary(bytes.NewReader(data))
	}
	return optiwise.Assemble(moduleName(path), string(data))
}

// cmdAsm assembles source into an OWX binary image.
func cmdAsm(args []string) error {
	fs := flag.NewFlagSet("asm", flag.ExitOnError)
	out := fs.String("o", "a.owx", "output image")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("asm wants exactly one source file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := optiwise.Assemble(moduleName(fs.Arg(0)), string(src))
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := prog.WriteBinary(f); err != nil {
		return err
	}
	fmt.Printf("assembled %s -> %s\n", fs.Arg(0), *out)
	return nil
}

func moduleName(path string) string {
	base := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			base = path[i+1:]
			break
		}
	}
	if len(base) > 2 && base[len(base)-2:] == ".s" {
		base = base[:len(base)-2]
	}
	return base
}

func cmdRun(args []string) error {
	c := newFlags("run")
	fn := c.fs.String("func", "", "annotate only this function")
	csv := c.fs.Bool("csv", false, "emit CSV instead of text report")
	callgraph := c.fs.Bool("callgraph", false, "emit the caller/callee table")
	jsonOut := c.fs.Bool("json", false, "emit the combined profile as JSON")
	yamlOut := c.fs.Bool("yaml", false, "emit the combined profile as YAML")
	events := c.fs.Bool("events", false, "emit per-function event rates (misses, mispredicts)")
	loopID := c.fs.Int("loop", -1, "annotate only this loop id")
	streamN := c.fs.Uint64("stream", 0, "streaming window in cycles (0 = off): emit a per-window progress line per profile increment and build the final report from the incrementally combined stream")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	opts, err := c.options()
	if err != nil {
		return err
	}
	var comb *optiwise.StreamCombiner
	var combErr error
	var combMu sync.Mutex
	prog, err := loadProgram(c.fs)
	if err != nil {
		return err
	}
	if *streamN > 0 {
		comb = optiwise.NewStreamCombiner(prog, opts)
		opts.StreamWindow = *streamN
		opts.OnIncrement = func(inc optiwise.Increment) {
			if err := comb.Add(inc); err != nil {
				combMu.Lock()
				if combErr == nil {
					combErr = err
				}
				combMu.Unlock()
				return
			}
			tag := ""
			if inc.Final {
				tag = " (final)"
			}
			if inc.Sample != nil {
				fmt.Fprintf(os.Stderr, "stream: sampling window #%d: %d samples, %d cycles%s\n",
					inc.Seq, len(inc.Sample.Records), inc.Sample.TotalCycles, tag)
			} else if inc.Edge != nil {
				fmt.Fprintf(os.Stderr, "stream: instrumentation window #%d: %d instructions, %d blocks touched%s\n",
					inc.Seq, inc.Edge.BaseInstructions, len(inc.Edge.Blocks), tag)
			}
		}
		if err := opts.Validate(); err != nil {
			return err
		}
	}
	return c.withObs(func() error {
		c.obs.Progressf("[1/1] profiling %s", prog.Module())
		sw := obs.StartTimer()
		prof, err := optiwise.Profile(prog, opts)
		if err != nil {
			return err
		}
		if comb != nil {
			// Render from the incrementally combined stream rather than
			// the one-shot result — the two are byte-identical by
			// construction, and this path exercises that guarantee.
			combMu.Lock()
			err := combErr
			combMu.Unlock()
			if err != nil {
				return fmt.Errorf("stream combine: %w", err)
			}
			snap := comb.Snapshot()
			fmt.Fprintf(os.Stderr, "stream: %d sampling + %d instrumentation windows combined incrementally\n",
				len(snap.SampleWindows), len(snap.EdgeWindows))
			prof, err = comb.Result(context.Background())
			if err != nil {
				return err
			}
		}
		obs.Info("profile complete",
			obs.F("module", prog.Module()),
			obs.F("samples", prof.TotalSamples),
			obs.F("seconds", sw.Seconds()))
		switch {
		case *jsonOut:
			return prof.WriteJSON(os.Stdout)
		case *yamlOut:
			return optiwise.WriteYAML(os.Stdout, prof)
		case *loopID >= 0:
			return optiwise.WriteAnnotatedLoop(os.Stdout, prof, *loopID)
		case *events:
			return optiwise.WriteEventTable(os.Stdout, prof)
		case *csv:
			if err := optiwise.WriteInstCSV(os.Stdout, prof); err != nil {
				return err
			}
			fmt.Println()
			return optiwise.WriteLoopCSV(os.Stdout, prof)
		case *callgraph:
			return optiwise.WriteCallGraph(os.Stdout, prof)
		case *fn != "":
			return optiwise.WriteAnnotated(os.Stdout, prof, *fn)
		default:
			return optiwise.WriteReport(os.Stdout, prof)
		}
	})
}

func cmdSample(args []string) error {
	c := newFlags("sample")
	out := c.fs.String("o", "sample.json", "output file")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	opts, err := c.options()
	if err != nil {
		return err
	}
	prog, err := loadProgram(c.fs)
	if err != nil {
		return err
	}
	return c.withObs(func() error {
		sp, stats, err := optiwise.SampleOnly(prog, opts)
		if err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sp.Write(f); err != nil {
			return err
		}
		fmt.Printf("sampled %s: %d samples over %d cycles -> %s\n",
			prog.Module(), stats.Samples, stats.Cycles, *out)
		return nil
	})
}

func cmdInstrument(args []string) error {
	c := newFlags("instrument")
	out := c.fs.String("o", "edges.json", "output file")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	opts, err := c.options()
	if err != nil {
		return err
	}
	prog, err := loadProgram(c.fs)
	if err != nil {
		return err
	}
	return c.withObs(func() error {
		ep, err := optiwise.InstrumentOnly(prog, opts)
		if err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ep.Write(f); err != nil {
			return err
		}
		fmt.Printf("instrumented %s: %d blocks, %d instructions, %.1fx overhead -> %s\n",
			prog.Module(), len(ep.Blocks), ep.BaseInstructions, ep.Overhead(), *out)
		return nil
	})
}

func cmdAnalyze(args []string) error {
	c := newFlags("analyze")
	sampleIn := c.fs.String("sample", "sample.json", "sampling profile")
	edgesIn := c.fs.String("edges", "edges.json", "edge profile")
	fn := c.fs.String("func", "", "annotate only this function")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	opts, err := c.options()
	if err != nil {
		return err
	}
	prog, err := loadProgram(c.fs)
	if err != nil {
		return err
	}
	sf, err := os.Open(*sampleIn)
	if err != nil {
		return err
	}
	defer sf.Close()
	sp, err := optiwise.ReadSampleProfile(sf)
	if err != nil {
		return err
	}
	ef, err := os.Open(*edgesIn)
	if err != nil {
		return err
	}
	defer ef.Close()
	ep, err := optiwise.ReadEdgeProfile(ef)
	if err != nil {
		return err
	}
	return c.withObs(func() error {
		prof, err := optiwise.Analyze(prog, sp, ep, opts)
		if err != nil {
			return err
		}
		if *fn != "" {
			return optiwise.WriteAnnotated(os.Stdout, prof, *fn)
		}
		return optiwise.WriteReport(os.Stdout, prof)
	})
}
