package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"optiwise"
	"optiwise/internal/core"
	"optiwise/internal/diff"
	"optiwise/internal/report"
)

// cmdCompare runs the differential CPI analysis between two versions of
// a program: per-function, per-loop, and per-basic-block CPI deltas
// with a sampling-noise significance test, rendered as text or JSON.
//
// Each argument is either a program (assembly source or OWX image),
// which compare profiles with the shared flags, or a combined-profile
// JSON export written by `optiwise run -json` (sniffed by the leading
// '{'). Mixing is allowed — profile yesterday's export against today's
// source. Exports collected under different machines or options are
// refused with an error naming the mismatch; profiles collected by this
// invocation always share the flag set, and the two sources are
// assembled under one module name (versions of the same program).
//
// With -threshold set, a significant CPI regression at or past the
// threshold makes the command fail (nonzero exit) — the CI regression
// gate.
func cmdCompare(args []string) error {
	c := newFlags("compare")
	threshold := c.fs.Float64("threshold", 0, "relative CPI regression gate (0.10 = 10%): exit nonzero when a significant regression meets it (0 = report only)")
	sigma := c.fs.Float64("sigma", 2, "significance band width in standard errors")
	jsonOut := c.fs.Bool("json", false, "emit the diff report as JSON")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	opts, err := c.options()
	if err != nil {
		return err
	}
	if c.fs.NArg() != 2 {
		return fmt.Errorf("compare wants exactly two inputs (program files or JSON exports)")
	}
	// Versions of one program diff under one module name: the first
	// profiled input's (or first export's) module wins.
	module := ""
	load := func(path string) (*core.Export, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if len(data) > 0 && data[0] == '{' {
			e, err := core.ReadExport(bytes.NewReader(data))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			if module == "" {
				module = e.Module
			}
			return e, nil
		}
		var prog *optiwise.Program
		if len(data) >= 4 && string(data[:4]) == "OWX\x01" {
			prog, err = optiwise.ReadBinary(bytes.NewReader(data))
		} else {
			name := module
			if name == "" {
				name = moduleName(path)
			}
			prog, err = optiwise.Assemble(name, string(data))
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if module == "" {
			module = prog.Module()
		}
		prof, err := optiwise.Profile(prog, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return prof.Export(), nil
	}
	oldExp, err := load(c.fs.Arg(0))
	if err != nil {
		return err
	}
	newExp, err := load(c.fs.Arg(1))
	if err != nil {
		return err
	}
	rep, err := diff.Compute(oldExp, newExp, diff.Options{
		Threshold: *threshold,
		Sigma:     *sigma,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else if err := report.WriteDiff(os.Stdout, rep); err != nil {
		return err
	}
	if *threshold > 0 && rep.Regressed {
		return fmt.Errorf("CPI regression: %d significant regression(s) at or past the %.1f%% threshold (worst %+.1f%%)",
			rep.Regressions, 100**threshold, 100*rep.MaxRegression)
	}
	return nil
}

// cmdCFG profiles a program (instrumentation only would suffice, but the
// shared pipeline keeps flags uniform) and emits one function's CFG as
// Graphviz dot — the diagrams of the paper's figures 4 and 6.
func cmdCFG(args []string) error {
	c := newFlags("cfg")
	fn := c.fs.String("func", "main", "function to render")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	opts, err := c.options()
	if err != nil {
		return err
	}
	prog, err := loadProgram(c.fs)
	if err != nil {
		return err
	}
	prof, err := optiwise.Profile(prog, opts)
	if err != nil {
		return err
	}
	return optiwise.WriteCFGDot(os.Stdout, prof, *fn)
}
