package main

import (
	"fmt"
	"os"
	"sort"

	"optiwise"
)

// cmdCompare profiles two versions of a program (e.g. baseline and
// optimized source) on the same machine and prints the per-function cycle
// deltas plus the overall speedup — the paper's case-study measurement
// loop as one command.
func cmdCompare(args []string) error {
	c := newFlags("compare")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	opts, err := c.options()
	if err != nil {
		return err
	}
	if c.fs.NArg() != 2 {
		return fmt.Errorf("compare wants exactly two program files")
	}
	load := func(path string) (*optiwise.Program, *optiwise.Result, optiwise.RunResult, error) {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, optiwise.RunResult{}, err
		}
		prog, err := optiwise.Assemble(moduleName(path), string(src))
		if err != nil {
			return nil, nil, optiwise.RunResult{}, err
		}
		prof, err := optiwise.Profile(prog, opts)
		if err != nil {
			return nil, nil, optiwise.RunResult{}, err
		}
		res, err := prog.Run(opts.Machine)
		if err != nil {
			return nil, nil, optiwise.RunResult{}, err
		}
		return prog, prof, res, nil
	}
	_, oldProf, oldRun, err := load(c.fs.Arg(0))
	if err != nil {
		return err
	}
	_, newProf, newRun, err := load(c.fs.Arg(1))
	if err != nil {
		return err
	}

	fmt.Printf("%s: %d cycles (IPC %.2f)\n", c.fs.Arg(0), oldRun.Cycles, oldRun.IPC)
	fmt.Printf("%s: %d cycles (IPC %.2f)\n", c.fs.Arg(1), newRun.Cycles, newRun.IPC)
	speedup := 100 * (float64(oldRun.Cycles)/float64(newRun.Cycles) - 1)
	fmt.Printf("speedup: %+.1f%%\n\n", speedup)
	if oldRun.ExitCode != newRun.ExitCode {
		fmt.Printf("WARNING: exit codes differ (%d vs %d) — versions may not be equivalent\n\n",
			oldRun.ExitCode, newRun.ExitCode)
	}

	// Per-function cycle deltas (matched by name; unmatched shown too).
	type row struct {
		name     string
		old, new uint64
	}
	rows := map[string]*row{}
	for _, f := range oldProf.Funcs {
		rows[f.Name] = &row{name: f.Name, old: f.SelfCycles}
	}
	for _, f := range newProf.Funcs {
		r := rows[f.Name]
		if r == nil {
			r = &row{name: f.Name}
			rows[f.Name] = r
		}
		r.new = f.SelfCycles
	}
	var sorted []*row
	for _, r := range rows {
		sorted = append(sorted, r)
	}
	sort.Slice(sorted, func(i, j int) bool {
		di := int64(sorted[i].old) - int64(sorted[i].new)
		dj := int64(sorted[j].old) - int64(sorted[j].new)
		if di != dj {
			return di > dj
		}
		return sorted[i].name < sorted[j].name
	})
	fmt.Printf("%-24s %14s %14s %12s\n", "FUNCTION (self cycles)", "OLD", "NEW", "DELTA")
	for _, r := range sorted {
		fmt.Printf("%-24s %14d %14d %+12d\n", r.name, r.old, r.new,
			int64(r.new)-int64(r.old))
	}
	return nil
}

// cmdCFG profiles a program (instrumentation only would suffice, but the
// shared pipeline keeps flags uniform) and emits one function's CFG as
// Graphviz dot — the diagrams of the paper's figures 4 and 6.
func cmdCFG(args []string) error {
	c := newFlags("cfg")
	fn := c.fs.String("func", "main", "function to render")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	opts, err := c.options()
	if err != nil {
		return err
	}
	prog, err := loadProgram(c.fs)
	if err != nil {
		return err
	}
	prof, err := optiwise.Profile(prog, opts)
	if err != nil {
		return err
	}
	return optiwise.WriteCFGDot(os.Stdout, prof, *fn)
}
