package main

import (
	"fmt"
	"os"

	"optiwise"
	"optiwise/internal/isa"
	"optiwise/internal/ooo"
	"optiwise/internal/program"
)

// cmdTrace renders a figure 2-style pipeline occupancy diagram: one row
// per dynamic instruction, one column per cycle, showing dispatch (d),
// execution (E), completed-awaiting-commit (-), and commit (C). It makes
// the sampling quirks visible at a glance: only instructions that spend
// cycles as the oldest uncommitted entry can ever be sampled.
func cmdTrace(args []string) error {
	c := newFlags("trace")
	count := c.fs.Int("n", 16, "number of instructions to render")
	skip := c.fs.Uint64("skip", 64, "dynamic instructions to skip (warmup)")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	opts, err := c.options()
	if err != nil {
		return err
	}
	prog, err := loadProgram(c.fs)
	if err != nil {
		return err
	}

	img := program.Load(prog.Raw(), program.LoadOptions{})
	sim := ooo.New(opts.Machine, img, ooo.Options{
		TraceLimit: *skip + uint64(*count) + 1,
		RandSeed:   7,
	})
	if _, err := sim.Run(0); err != nil {
		return err
	}
	var window []ooo.TimelineEntry
	for _, e := range sim.Trace() {
		if e.Seq > *skip && e.Seq <= *skip+uint64(*count) {
			window = append(window, e)
		}
	}
	if len(window) == 0 {
		return fmt.Errorf("trace: program too short for skip=%d", *skip)
	}
	renderTimeline(os.Stdout, prog, img, window)
	return nil
}

func renderTimeline(w *os.File, prog *optiwise.Program, img *program.Image, window []ooo.TimelineEntry) {
	base := window[0].Dispatch
	last := uint64(0)
	for _, e := range window {
		if e.Commit > last {
			last = e.Commit
		}
	}
	width := int(last - base + 1)
	const maxWidth = 120
	clipped := false
	if width > maxWidth {
		width = maxWidth
		clipped = true
	}

	fmt.Fprintf(w, "pipeline occupancy (cycles %d..%d; d=dispatch E=execute -=await commit C=commit)\n\n",
		base, base+uint64(width)-1)
	for _, e := range window {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		plot := func(from, to uint64, ch byte) {
			for c := from; c <= to; c++ {
				if c < base {
					continue
				}
				i := int(c - base)
				if i >= width {
					break
				}
				row[i] = ch
			}
		}
		if e.Start > e.Dispatch {
			plot(e.Dispatch, e.Start-1, 'd')
		}
		if e.Done > e.Start {
			plot(e.Start, e.Done-1, 'E')
		} else {
			plot(e.Start, e.Start, 'E')
		}
		if e.Commit > e.Done {
			plot(e.Done, e.Commit-1, '-')
		}
		plot(e.Commit, e.Commit, 'C')

		off, _ := img.AbsToOff(e.PC)
		inst, _ := prog.Raw().InstAt(off)
		fmt.Fprintf(w, "%6x %-20s |%s|\n", off, isa.Disassemble(inst), string(row))
	}
	if clipped {
		fmt.Fprintf(w, "\n(window clipped to %d cycles)\n", maxWidth)
	}
	fmt.Fprintln(w, "\nan instruction can only be sampled while it is the oldest entry —")
	fmt.Fprintln(w, "rows that never reach the commit frontier alone are invisible to perf")
}
