package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: optiwise
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1  	       4	 266834479 ns/op	         6.000 program-loops	84726708 B/op	  626556 allocs/op
BenchmarkTable1  	       5	 220939843 ns/op	         6.000 program-loops	84726721 B/op	  626557 allocs/op
BenchmarkTable1  	       4	 250547942 ns/op	         6.000 program-loops	84726688 B/op	  626556 allocs/op
BenchmarkFig1-8    	       3	 368080072 ns/op	         8.893 load-cpi	66762240 B/op	  463154 allocs/op
PASS
ok  	optiwise	32.9s
`

func TestParseAndAggregate(t *testing.T) {
	samples, err := ParseBenchOutput(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	agg := Aggregate(samples)
	table1, ok := agg["BenchmarkTable1"]
	if !ok {
		t.Fatal("BenchmarkTable1 missing from aggregate")
	}
	if table1.Samples != 3 {
		t.Errorf("Samples = %d, want 3", table1.Samples)
	}
	if want := 250547942.0; table1.NsPerOp != want {
		t.Errorf("median ns/op = %v, want %v", table1.NsPerOp, want)
	}
	if want := 626556.0; table1.AllocsPerOp != want {
		t.Errorf("median allocs/op = %v, want %v", table1.AllocsPerOp, want)
	}
	if got := table1.Metrics["program-loops"]; got != 6 {
		t.Errorf("program-loops = %v, want 6", got)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	if _, ok := agg["BenchmarkFig1"]; !ok {
		t.Errorf("BenchmarkFig1 missing (suffix not stripped?): %v", agg)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	_, err := ParseBenchOutput("BenchmarkBroken   12  garbage ns/op\n")
	if err == nil {
		t.Fatal("malformed value parsed without error")
	}
}

func TestCompareThresholds(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkC": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkD": {NsPerOp: 1000, AllocsPerOp: 100},
	}
	run := map[string]Result{
		"BenchmarkA": {NsPerOp: 1100, AllocsPerOp: 105}, // within both thresholds
		"BenchmarkB": {NsPerOp: 1200, AllocsPerOp: 100}, // time regression
		"BenchmarkC": {NsPerOp: 900, AllocsPerOp: 120},  // alloc regression
		// BenchmarkD missing entirely.
	}
	rep := Compare(base, run, 15, 10)
	if !rep.Failed() {
		t.Fatal("report should fail")
	}
	byName := map[string]Row{}
	for _, row := range rep.Rows {
		byName[row.Name] = row
	}
	if row := byName["BenchmarkA"]; row.TimeRegressed || row.AllocRegressed {
		t.Errorf("A should pass: %+v", row)
	}
	if row := byName["BenchmarkB"]; !row.TimeRegressed || row.AllocRegressed {
		t.Errorf("B should be a time regression: %+v", row)
	}
	if row := byName["BenchmarkC"]; row.TimeRegressed || !row.AllocRegressed {
		t.Errorf("C should be an alloc regression: %+v", row)
	}
	if row := byName["BenchmarkD"]; !row.Missing {
		t.Errorf("D should be missing: %+v", row)
	}

	// Pure improvements pass.
	rep = Compare(base, map[string]Result{
		"BenchmarkA": {NsPerOp: 500, AllocsPerOp: 50},
		"BenchmarkB": {NsPerOp: 500, AllocsPerOp: 50},
		"BenchmarkC": {NsPerOp: 500, AllocsPerOp: 50},
		"BenchmarkD": {NsPerOp: 500, AllocsPerOp: 50},
	}, 15, 10)
	if rep.Failed() {
		t.Fatalf("improvement should pass: %+v", rep.Rows)
	}
	var sb strings.Builder
	rep.Print(&sb)
	if !strings.Contains(sb.String(), "improved") {
		t.Errorf("improvement not reported:\n%s", sb.String())
	}
}
