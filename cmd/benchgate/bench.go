package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one `go test -bench` result line: one timed run of one
// benchmark.
type Sample struct {
	Name    string // GOMAXPROCS suffix stripped: BenchmarkFig1, not BenchmarkFig1-8
	Iters   int64
	NsPerOp float64
	// BytesPerOp / AllocsPerOp come from -benchmem; negative when the
	// line carried no memory columns.
	BytesPerOp  float64
	AllocsPerOp float64
	// Metrics holds custom b.ReportMetric columns (load-cpi,
	// program-loops, speedup-%, ...).
	Metrics map[string]float64
}

// Result is the aggregate of all counts of one benchmark: the median of
// each column, which is what benchstat uses as its robust center.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Samples     int                `json:"samples"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the checked-in baseline document (bench/baseline.json).
type File struct {
	Generated  string            `json:"generated"`
	GoVersion  string            `json:"go_version"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Artifact is the per-PR benchmark record (BENCH_PR3.json): the run, the
// comparison, and the verdict.
type Artifact struct {
	Generated  string            `json:"generated"`
	GoVersion  string            `json:"go_version"`
	Baseline   string            `json:"baseline"`
	Benchmarks map[string]Result `json:"benchmarks"`
	Comparison []Row             `json:"comparison"`
	Pass       bool              `json:"pass"`
}

// ParseBenchOutput extracts benchmark result lines from `go test -bench`
// text output. Non-benchmark lines (goos/goarch/pkg headers, PASS, ok)
// are skipped; malformed Benchmark lines are errors so silent truncation
// cannot sneak a regression past the gate.
func ParseBenchOutput(text string) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue // a benchmark name echoed alone (b.Run header)
		}
		s, err := parseLine(fields)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", line, err)
		}
		out = append(out, s)
	}
	return out, sc.Err()
}

func parseLine(fields []string) (Sample, error) {
	s := Sample{
		Name:        stripProcs(fields[0]),
		BytesPerOp:  -1,
		AllocsPerOp: -1,
		Metrics:     map[string]float64{},
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return s, fmt.Errorf("iteration count: %w", err)
	}
	s.Iters = iters
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return s, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			s.NsPerOp = v
		case "B/op":
			s.BytesPerOp = v
		case "allocs/op":
			s.AllocsPerOp = v
		case "MB/s":
			s.Metrics["MB/s"] = v
		default:
			s.Metrics[unit] = v
		}
	}
	if s.NsPerOp == 0 {
		return s, fmt.Errorf("no ns/op column")
	}
	return s, nil
}

// stripProcs removes the -GOMAXPROCS suffix go test appends to
// benchmark names.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Aggregate folds repeated counts of each benchmark into its median
// Result.
func Aggregate(samples []Sample) map[string]Result {
	byName := map[string][]Sample{}
	for _, s := range samples {
		byName[s.Name] = append(byName[s.Name], s)
	}
	out := make(map[string]Result, len(byName))
	for name, group := range byName {
		r := Result{Samples: len(group)}
		r.NsPerOp = median(group, func(s Sample) float64 { return s.NsPerOp })
		if b := median(group, func(s Sample) float64 { return s.BytesPerOp }); b >= 0 {
			r.BytesPerOp = b
		}
		if a := median(group, func(s Sample) float64 { return s.AllocsPerOp }); a >= 0 {
			r.AllocsPerOp = a
		}
		metrics := map[string]float64{}
		for unit := range group[0].Metrics {
			metrics[unit] = median(group, func(s Sample) float64 { return s.Metrics[unit] })
		}
		if len(metrics) > 0 {
			r.Metrics = metrics
		}
		out[name] = r
	}
	return out
}

func median(group []Sample, get func(Sample) float64) float64 {
	vals := make([]float64, 0, len(group))
	for _, s := range group {
		vals = append(vals, get(s))
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// Row is one benchmark's baseline-vs-run comparison.
type Row struct {
	Name string `json:"name"`
	// Missing marks a baseline benchmark absent from the run — always a
	// failure (the gate must run the pinned set).
	Missing bool `json:"missing,omitempty"`

	BaseNs     float64 `json:"base_ns_per_op"`
	NewNs      float64 `json:"new_ns_per_op"`
	TimeDelta  float64 `json:"time_delta_pct"`
	BaseAllocs float64 `json:"base_allocs_per_op"`
	NewAllocs  float64 `json:"new_allocs_per_op"`
	AllocDelta float64 `json:"alloc_delta_pct"`

	TimeRegressed  bool `json:"time_regressed,omitempty"`
	AllocRegressed bool `json:"alloc_regressed,omitempty"`
}

// Report is the full comparison outcome.
type Report struct {
	Rows []Row
}

// Failed reports whether any row breaches a threshold.
func (r Report) Failed() bool {
	for _, row := range r.Rows {
		if row.Missing || row.TimeRegressed || row.AllocRegressed {
			return true
		}
	}
	return false
}

// Compare checks every baseline benchmark against the run. Benchmarks
// present only in the run are ignored (the baseline pins the gate set).
func Compare(base, run map[string]Result, maxTimePct, maxAllocPct float64) Report {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var rep Report
	for _, name := range names {
		b := base[name]
		n, ok := run[name]
		if !ok {
			rep.Rows = append(rep.Rows, Row{Name: name, Missing: true,
				BaseNs: b.NsPerOp, BaseAllocs: b.AllocsPerOp})
			continue
		}
		row := Row{
			Name:       name,
			BaseNs:     b.NsPerOp,
			NewNs:      n.NsPerOp,
			BaseAllocs: b.AllocsPerOp,
			NewAllocs:  n.AllocsPerOp,
		}
		if b.NsPerOp > 0 {
			row.TimeDelta = 100 * (n.NsPerOp - b.NsPerOp) / b.NsPerOp
			row.TimeRegressed = row.TimeDelta > maxTimePct
		}
		if b.AllocsPerOp > 0 {
			row.AllocDelta = 100 * (n.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp
			row.AllocRegressed = row.AllocDelta > maxAllocPct
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Print renders the comparison as an aligned table.
func (r Report) Print(w io.Writer) {
	fmt.Fprintf(w, "%-28s %14s %14s %8s %12s %12s %8s  %s\n",
		"benchmark", "base ns/op", "new ns/op", "Δtime",
		"base allocs", "new allocs", "Δallocs", "verdict")
	for _, row := range r.Rows {
		if row.Missing {
			fmt.Fprintf(w, "%-28s %14.0f %14s %8s %12.0f %12s %8s  MISSING\n",
				row.Name, row.BaseNs, "-", "-", row.BaseAllocs, "-", "-")
			continue
		}
		verdict := "ok"
		switch {
		case row.TimeRegressed && row.AllocRegressed:
			verdict = "REGRESSED (time, allocs)"
		case row.TimeRegressed:
			verdict = "REGRESSED (time)"
		case row.AllocRegressed:
			verdict = "REGRESSED (allocs)"
		case row.TimeDelta < -5:
			verdict = fmt.Sprintf("improved %.1f%%", -row.TimeDelta)
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %7.1f%% %12.0f %12.0f %7.1f%%  %s\n",
			row.Name, row.BaseNs, row.NewNs, row.TimeDelta,
			row.BaseAllocs, row.NewAllocs, row.AllocDelta, verdict)
	}
}
