// Command benchgate is the repository's benchmark-regression gate: a
// small benchstat-style comparator that parses `go test -bench` text
// output, aggregates repeated counts per benchmark (median), and compares
// the run against a checked-in baseline (bench/baseline.json), failing
// when wall clock or allocations regress beyond the configured
// thresholds.
//
// Usage:
//
//	# compare a fresh run against the baseline (CI gate)
//	go test -run xxx -bench '^(BenchmarkFig1|BenchmarkTable1|BenchmarkCaseMCF)$' \
//	    -benchmem -count=6 . > run.txt
//	go run ./cmd/benchgate -baseline bench/baseline.json -json BENCH_PR3.json run.txt
//
//	# refresh the baseline after an intentional perf change
//	go run ./cmd/benchgate -write bench/baseline.json run.txt
//
// The gate fails (exit 1) when any baseline benchmark regresses by more
// than -max-time-regress percent in ns/op or -max-alloc-regress percent
// in allocs/op, or is missing from the run entirely. Improvements always
// pass and are reported so refreshed baselines can be justified.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"optiwise/internal/durable"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline JSON to compare against")
		writePath    = flag.String("write", "", "write a new baseline JSON from the run and exit")
		jsonOut      = flag.String("json", "", "write the run (and comparison, if any) as a JSON artifact")
		maxTime      = flag.Float64("max-time-regress", 15, "max allowed ns/op regression in percent")
		maxAlloc     = flag.Float64("max-alloc-regress", 10, "max allowed allocs/op regression in percent")
	)
	flag.Parse()
	if err := run(*baselinePath, *writePath, *jsonOut, *maxTime, *maxAlloc, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baselinePath, writePath, jsonOut string, maxTime, maxAlloc float64, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("no benchmark output files given")
	}
	if baselinePath == "" && writePath == "" {
		return fmt.Errorf("one of -baseline or -write is required")
	}
	var samples []Sample
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		s, err := ParseBenchOutput(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		samples = append(samples, s...)
	}
	if len(samples) == 0 {
		return fmt.Errorf("no benchmark result lines found in %v", args)
	}
	runSet := Aggregate(samples)

	if writePath != "" {
		return writeJSON(writePath, File{
			Generated:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			Benchmarks: runSet,
		})
	}

	base, err := readBaseline(baselinePath)
	if err != nil {
		return err
	}
	report := Compare(base.Benchmarks, runSet, maxTime, maxAlloc)
	report.Print(os.Stdout)
	if jsonOut != "" {
		art := Artifact{
			Generated:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			Baseline:   baselinePath,
			Benchmarks: runSet,
			Comparison: report.Rows,
			Pass:       !report.Failed(),
		}
		if err := writeJSON(jsonOut, art); err != nil {
			return err
		}
	}
	if report.Failed() {
		return fmt.Errorf("benchmark regression beyond thresholds (time >%.0f%%, allocs >%.0f%%)",
			maxTime, maxAlloc)
	}
	return nil
}

func readBaseline(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return f, fmt.Errorf("%s: baseline holds no benchmarks", path)
	}
	return f, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	// Atomic temp+rename+fsync: an interrupted -write never leaves a
	// truncated baseline for the next CI run to trip over.
	return durable.AtomicWrite(path, append(data, '\n'), 0o644)
}
