package main

import (
	"fmt"

	"optiwise"
	"optiwise/internal/asm"
	"optiwise/internal/dbi"
	"optiwise/internal/loops"
	"optiwise/internal/ooo"
	"optiwise/internal/program"
	"optiwise/internal/workloads"
)

// ablate runs the design-choice ablations called out in DESIGN.md §4.
func ablate() error {
	if err := ablateAttribution(); err != nil {
		return err
	}
	if err := ablateWeighting(); err != nil {
		return err
	}
	if err := ablateThreshold(); err != nil {
		return err
	}
	if err := ablatePredictor(); err != nil {
		return err
	}
	if err := ablateCleanCall(); err != nil {
		return err
	}
	return ablateGprof()
}

// ablateGprof compares stack-profiling attribution (§IV-D) against
// gprof-style call-ratio apportioning on a program whose shared callee
// does 9x more work for one caller than the other.
func ablateGprof() error {
	fmt.Println("-- ablation: stack profiling vs gprof-style apportioning (§IV-D) --")
	src := `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 150
m_loop:
    call cheap_user
    call heavy_user
    addi s2, s2, -1
    bnez s2, m_loop
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func cheap_user
cheap_user:
    addi sp, sp, -16
    st ra, 8(sp)
    li a0, 10
    call shared
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
.endfunc
.func heavy_user
heavy_user:
    addi sp, sp, -16
    st ra, 8(sp)
    li a0, 90
    call shared
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
.endfunc
.func shared
shared:
    mov t0, a0
s_loop:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, s_loop
    ret
.endfunc
`
	prog, err := optiwise.Assemble("gprof-ablation", src)
	if err != nil {
		return err
	}
	prof, err := profile(prog, optiwise.Options{SamplePeriod: 300})
	if err != nil {
		return err
	}
	fmt.Printf("  %-12s %18s %18s\n", "FUNCTION", "STACKS (truth)", "GPROF-STYLE")
	for _, name := range []string{"cheap_user", "heavy_user"} {
		f, _ := prof.FuncByName(name)
		g, _ := prof.GprofTotalFor(name)
		fmt.Printf("  %-12s %17.1f%% %17.1f%%\n", name, 100*f.TimeFrac, 100*g.TimeFrac)
	}
	fmt.Println("  (both callers invoke 'shared' equally often, but with 9x different")
	fmt.Println("   work: call-ratio apportioning splits the cost evenly and is wrong)")
	return nil
}

// ablateAttribution compares how much of the cache-missing load's cost each
// attribution mode recovers on the figure 1 kernel.
func ablateAttribution() error {
	fmt.Println("-- ablation: sample attribution (§III point 1) --")
	prog, err := optiwise.Fig1Program()
	if err != nil {
		return err
	}
	show := func(name string, opts optiwise.Options) error {
		opts.SamplePeriod = 500
		prof, err := profile(prog, opts)
		if err != nil {
			return err
		}
		r, _ := prof.InstAt(workloads.Fig1LoadOffset)
		frac := 0.0
		if prof.TotalCycles > 0 {
			frac = float64(r.Cycles) / float64(prof.TotalCycles)
		}
		hot, _ := prof.HottestInst()
		fmt.Printf("  %-28s load CPI %7.2f, %5.1f%% of cycles on the load, hottest=%s\n",
			name, r.CPI, 100*frac, hot.Disasm)
		return nil
	}
	if err := show("skid, no re-attribution", optiwise.Options{Attribution: optiwise.AttrNone}); err != nil {
		return err
	}
	if err := show("skid + predecessor heuristic", optiwise.Options{Attribution: optiwise.AttrPredecessor}); err != nil {
		return err
	}
	return show("PEBS-style precise", optiwise.Options{Precise: true})
}

// ablateWeighting compares weighted samples against raw sample counting.
func ablateWeighting() error {
	fmt.Println("-- ablation: sample weighting (§IV-B) --")
	prog, err := optiwise.Fig1Program()
	if err != nil {
		return err
	}
	for _, unweighted := range []bool{false, true} {
		prof, err := profile(prog, optiwise.Options{
			SamplePeriod: 500, Unweighted: unweighted,
		})
		if err != nil {
			return err
		}
		r, _ := prof.InstAt(workloads.Fig1LoadOffset)
		fmt.Printf("  unweighted=%-5v load CPI %.2f (total cycle estimate %d)\n",
			unweighted, r.CPI, prof.TotalCycles)
	}
	return nil
}

// ablateThreshold sweeps Algorithm 2's T on the figure 6 loop nest.
func ablateThreshold() error {
	fmt.Println("-- ablation: loop-merging threshold T (§IV-E) --")
	raw := loops.Find(fig6Graph())
	for _, t := range []uint64{1, 2, 3, 5, 10, 100} {
		merged := loops.Merge(raw, t)
		fmt.Printf("  T=%-4d -> %d program loops\n", t, len(merged))
	}
	fmt.Println("  (paper chooses T=3: 3 loops — nested X and Y split, control paths merged)")
	return nil
}

// ablatePredictor compares gshare against the bimodal ablation predictor
// on the branchy mcf comparator workload.
func ablatePredictor() error {
	fmt.Println("-- ablation: direction predictor (gshare vs bimodal) --")
	cfg := optiwise.DefaultMCFConfig()
	cfg.Arcs = 2000
	cfg.ScanInvocations = 5
	p, err := optiwise.MCFProgram(cfg)
	if err != nil {
		return err
	}
	for _, bimodal := range []bool{false, true} {
		m := ooo.XeonW2195()
		m.UseBimodal = bimodal
		img := program.Load(p.Raw(), program.LoadOptions{})
		sim := ooo.New(m, img, ooo.Options{RandSeed: 7})
		st, err := sim.Run(0)
		if err != nil {
			return err
		}
		name := "gshare"
		if bimodal {
			name = "bimodal"
		}
		fmt.Printf("  %-8s %12d cycles, %6.2f%% mispredict rate\n",
			name, st.Cycles, 100*float64(st.Mispredicts)/float64(st.Branches))
	}
	return nil
}

// ablateCleanCall re-prices the indirect-branch instrumentation: what the
// figure 7 worst case would look like if indirect branches were handled by
// inlined hashing instead of DynamoRIO clean calls.
func ablateCleanCall() error {
	fmt.Println("-- ablation: clean-call vs inlined indirect-branch instrumentation (§IV-C) --")
	spec, _ := optiwise.SuiteSpecs(), 0
	_ = spec
	s, ok := workloads.SpecByName("523.xalancbmk")
	if !ok {
		return fmt.Errorf("missing spec")
	}
	p, err := asm.Assemble(s.Name, workloads.Generate(s.Scale(0.25)))
	if err != nil {
		return err
	}
	for _, cleanCall := range []uint64{500, 50, 10} {
		costs := dbi.DefaultCosts()
		costs.CleanCall = cleanCall
		prof, err := dbi.Run(p, dbi.Options{StackProfiling: true, Costs: &costs, RandSeed: 7})
		if err != nil {
			return err
		}
		fmt.Printf("  clean-call cost %4d instr-equivalents -> xalancbmk overhead %6.1fx\n",
			cleanCall, prof.Overhead())
	}
	fmt.Println("  (the paper's worst case is entirely a clean-call artifact)")
	return nil
}
