package main

// owbench tiered: the overhead/accuracy frontier of tiered profiling
// (DESIGN.md §12). For every suite workload the experiment prices a
// full profile and a ladder of tiered profiles on the figure 7 cost
// model — profile wall-clock = sampling ratio + modelled
// instrumentation ratio, both relative to native — and reports what
// each saving costs in accuracy: the worst hot-block CPI deviation
// against the full profile, the cycle mass still covered exactly, and
// the fraction of retired instructions left to extrapolation.
//
// The frontier is genuinely a trade: hot code is hot because it is
// where the expensive-to-instrument sites live (indirect branches,
// tight loops), so large savings require raising the hotness bar and
// shrinking exact coverage. The experiment's operating point per
// workload is the smallest threshold on the ladder that cuts the
// modelled wall-clock by >= 30% while keeping every remaining
// hot-block CPI within 5% of the full profile; how much cycle mass
// stays exact, and whether the single hottest block does, are reported
// next to every point so the coverage cost of the saving is visible.
//
// The experiment is self-gating: it fails unless at least three
// workloads have such an operating point. The tiered-smoke CI job runs
// it on every push.

import (
	"fmt"
	"math"
	"sort"

	"optiwise"
	"optiwise/internal/dbi"
)

// tieredScale is the per-workload input scale. The frontier's shape is
// scale-stable (hotness concentration is a property of the workload's
// loop structure, not its iteration count); 0.5 keeps the full-suite
// sweep fast enough for CI.
const tieredScale = 0.5

// tieredLadder is the threshold sweep, smallest (widest coverage)
// first. The operating point search walks it in order, so the chosen
// point is always the most conservative one that clears the bar.
var tieredLadder = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5}

// tieredGate is the acceptance bar the experiment enforces.
const (
	tieredMinCut       = 0.30 // modelled wall-clock saving
	tieredMaxCPIDev    = 0.05 // worst hot-block CPI deviation
	tieredMinWorkloads = 3
)

// inRanges reports whether off falls inside the normalized selection.
func inRanges(rs []dbi.Range, off uint64) bool {
	for _, r := range rs {
		if off >= r.Lo && off < r.Hi {
			return true
		}
	}
	return false
}

// tieredPoint is one (workload, threshold) frontier measurement.
type tieredPoint struct {
	thr        float64
	ranges     int
	coldPct    float64 // retired instructions extrapolated, %
	tierX      float64 // tiered profile wall, x native
	cutPct     float64 // wall-clock saving vs full, %
	cpiDev     float64 // worst hot-block CPI deviation, fraction
	hotCycPct  float64 // cycle mass in exactly-counted hot blocks, %
	hotBlocks  int     // hot blocks compared
	hottestHot bool    // the workload's hottest block stayed exact
}

// tieredWorkload is one workload's full measurement plus its ladder.
type tieredWorkload struct {
	name    string
	fullX   float64 // full profile wall, x native
	points  []tieredPoint
	operate int // index into points of the chosen operating point; -1 if none clears the bar
}

// clears reports whether the point meets the gate: the wall-clock cut,
// the CPI bar over the blocks that stayed instrumented, and at least
// one such block so the CPI bar is not vacuously satisfied. Whether
// the workload's hottest block stayed exact is reported alongside
// (large blocks whose head sits far upstream of their sampled window
// can fall to head-granular selection; the frontier table makes that
// visible rather than hiding it).
func (p tieredPoint) clears() bool {
	return p.cutPct >= 100*tieredMinCut && p.cpiDev <= tieredMaxCPIDev && p.hotBlocks > 0
}

// tieredMeasure profiles one program full and across the ladder. The
// sampling pass runs once and feeds every arm, like the real pipeline
// would.
func tieredMeasure(prog *optiwise.Program, opts optiwise.Options) (tieredWorkload, error) {
	w := tieredWorkload{name: prog.Module(), operate: -1}
	base, err := prog.Run(optiwise.XeonW2195())
	if err != nil {
		return w, err
	}
	sp, sstats, err := optiwise.SampleOnly(prog, opts)
	if err != nil {
		return w, err
	}
	samplingX := float64(sstats.Cycles) / float64(base.Cycles)

	epFull, err := optiwise.InstrumentOnly(prog, opts)
	if err != nil {
		return w, err
	}
	full, err := optiwise.Analyze(prog, sp, epFull, opts)
	if err != nil {
		return w, err
	}
	w.fullX = samplingX + epFull.Overhead()

	// The hottest block is the profile's headline answer; losing it to
	// extrapolation would gut the tiered result, so the operating-point
	// search refuses thresholds that evict it.
	hottest := uint64(0)
	var hottestStart uint64
	var totCyc uint64
	for _, b := range full.Blocks {
		totCyc += b.Cycles
		if b.Cycles > hottest {
			hottest, hottestStart = b.Cycles, b.Start
		}
	}

	for _, thr := range tieredLadder {
		o := opts
		o.Tiered = true
		o.HotThreshold = thr
		epTier, err := optiwise.TieredInstrumentOnly(prog, sp, o)
		if err != nil {
			return w, err
		}
		tier, err := optiwise.Analyze(prog, sp, epTier, o)
		if err != nil {
			return w, err
		}
		pt := tieredPoint{
			thr:        thr,
			ranges:     len(epTier.HotRanges),
			tierX:      samplingX + epTier.Overhead(),
			hottestHot: inRanges(epTier.HotRanges, hottestStart),
		}
		if tier.TotalInsts > 0 {
			pt.coldPct = 100 * float64(tier.ColdInsts) / float64(tier.TotalInsts)
		}
		pt.cutPct = 100 * (1 - pt.tierX/w.fullX)

		// Hot-block accuracy: every block whose head the selection
		// instrumented must carry (near-)identical CPI in both profiles.
		tierBlocks := make(map[uint64]float64, len(tier.Blocks))
		for _, b := range tier.Blocks {
			tierBlocks[b.Start] = b.CPI
		}
		var hotCyc uint64
		for _, b := range full.Blocks {
			if !inRanges(epTier.HotRanges, b.Start) || b.Cycles == 0 || b.CPI == 0 {
				continue
			}
			hotCyc += b.Cycles
			pt.hotBlocks++
			tcpi, ok := tierBlocks[b.Start]
			if !ok {
				return w, fmt.Errorf("%s thr=%g: hot block %#x missing from tiered profile", w.name, thr, b.Start)
			}
			if dev := math.Abs(tcpi-b.CPI) / b.CPI; dev > pt.cpiDev {
				pt.cpiDev = dev
			}
		}
		if totCyc > 0 {
			pt.hotCycPct = 100 * float64(hotCyc) / float64(totCyc)
		}
		if w.operate < 0 && pt.clears() {
			w.operate = len(w.points)
		}
		w.points = append(w.points, pt)
	}
	return w, nil
}

// tieredCmd prints the frontier and enforces the gate.
func tieredCmd() error {
	fmt.Println("Tiered profiling: overhead/accuracy frontier across the suite")
	fmt.Printf("(wall x = sampling + modelled instrumentation ratio over native, figure 7\n"+
		" cost model; CPI dev = worst hot-block CPI deviation vs the full profile;\n"+
		" HOT-CYC%% = cycle mass still counted exactly; operating point * = smallest\n"+
		" threshold with >=%.0f%%%% cut and hot-block CPI within %.0f%%%%)\n\n",
		100*tieredMinCut, 100*tieredMaxCPIDev)

	opts := optiwise.Options{SamplePeriod: 2000}
	specs := optiwise.SuiteSpecs()
	var works []tieredWorkload
	for i, spec := range specs {
		obsCfg.Progressf("[%d/%d] %s: full + %d tiered profiles",
			i+1, len(specs), spec.Name, len(tieredLadder))
		prog, err := optiwise.SuiteProgram(spec, tieredScale)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		w, err := tieredMeasure(prog, opts)
		if err != nil {
			return err
		}
		works = append(works, w)
	}

	// Per-workload frontier, one line per ladder point.
	for _, w := range works {
		fmt.Printf("%-16s full %.2fx\n", w.name, w.fullX)
		fmt.Printf("  %9s %7s %7s %9s %7s %9s %8s %7s %8s\n",
			"THRESHOLD", "RANGES", "COLD%", "TIERED x", "CUT%", "CPI-DEV%", "HOT-CYC%", "BLOCKS", "HOTTEST")
		for i, p := range w.points {
			mark := " "
			if i == w.operate {
				mark = "*"
			}
			hotstr := "exact"
			if !p.hottestHot {
				hotstr = "est."
			}
			fmt.Printf("%s %9.2f %7d %7.1f %9.2f %7.1f %9.2f %8.1f %7d %8s\n",
				mark, p.thr, p.ranges, p.coldPct, p.tierX, p.cutPct,
				100*p.cpiDev, p.hotCycPct, p.hotBlocks, hotstr)
		}
	}

	// Summary: the default-threshold (conservative) column and the
	// chosen operating points.
	fmt.Printf("\n%-16s %9s | %9s %7s %9s %8s\n",
		"BENCHMARK", "DFLT-CUT%", "OPERATING", "CUT%", "CPI-DEV%", "HOT-CYC%")
	meet := 0
	var opCuts []float64
	for _, w := range works {
		def := w.points[0]
		if w.operate < 0 {
			fmt.Printf("%-16s %9.1f | %9s %7s %9s %8s\n",
				w.name, def.cutPct, "-", "-", "-", "-")
			continue
		}
		op := w.points[w.operate]
		opCuts = append(opCuts, op.cutPct)
		meet++
		fmt.Printf("%-16s %9.1f | %9.2f %7.1f %9.2f %8.1f\n",
			w.name, def.cutPct, op.thr, op.cutPct, 100*op.cpiDev, op.hotCycPct)
	}
	sort.Float64s(opCuts)
	fmt.Printf("\nworkloads with an operating point (>=%.0f%% wall cut, hot-block CPI\n"+
		"within %.0f%%): %d of %d\n",
		100*tieredMinCut, 100*tieredMaxCPIDev, meet, len(specs))
	if meet > 0 {
		fmt.Printf("operating-point cuts: min %.1f%%, max %.1f%%\n",
			opCuts[0], opCuts[len(opCuts)-1])
	}

	if meet < tieredMinWorkloads {
		return fmt.Errorf("tiered frontier gate: only %d workloads have an operating point (want >= %d with >=%.0f%% wall cut and CPI within %.0f%%)",
			meet, tieredMinWorkloads, 100*tieredMinCut, 100*tieredMaxCPIDev)
	}
	return nil
}
