// Command owbench regenerates every table and figure of the OptiWISE paper
// evaluation on the simulated substrate:
//
//	owbench fig1      motivating example: samples vs counts vs CPI
//	owbench fig2      pipeline timeline and never-sampled instructions
//	owbench fig7      tool overhead across the 23-benchmark suite
//	owbench fig8      x86 sample skid around a long-latency store
//	owbench fig9      Neoverse-style early-dequeue sampling displacement
//	owbench fig10     annotated cost_compare disassembly (505.mcf)
//	owbench table1    loop-merging iterations on the figure 6 CFG
//	owbench mcf       case study A: comparator/divide/unroll optimizations
//	owbench deepsjeng case study B: prefetch + divide removal
//	owbench bwaves    case study C: divide-by-invariant inversion
//	owbench ablate    design-choice ablations (DESIGN.md §4)
//	owbench all       everything above
//
// Shape, not absolute numbers, is the reproduction target: who wins, by
// roughly what factor, and where the worst cases fall. EXPERIMENTS.md
// records paper-vs-measured for each experiment.
package main

import (
	"fmt"
	"os"
)

var commands = []struct {
	name string
	desc string
	run  func() error
}{
	{"fig1", "motivating example: samples vs counts vs CPI", fig1},
	{"fig2", "pipeline timeline and never-sampled instructions", fig2},
	{"fig7", "tool overhead across the 23-benchmark suite", fig7},
	{"fig8", "x86 sample skid around a long-latency store", fig8},
	{"fig9", "N1 early-dequeue sampling displacement", fig9},
	{"fig10", "annotated cost_compare disassembly", fig10},
	{"table1", "loop-merging iterations on the figure 6 CFG", table1},
	{"mcf", "case study A: 505.mcf", caseMCF},
	{"deepsjeng", "case study B: 531.deepsjeng", caseDeepsjeng},
	{"bwaves", "case study C: 603.bwaves", caseBwaves},
	{"accuracy", "sampling accuracy vs ground truth, by granularity", accuracyExp},
	{"ablate", "design-choice ablations", ablate},
}

func main() {
	if len(os.Args) != 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "all" {
		for _, c := range commands {
			fmt.Printf("==================== %s ====================\n", c.name)
			if err := c.run(); err != nil {
				fmt.Fprintf(os.Stderr, "owbench %s: %v\n", c.name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	for _, c := range commands {
		if c.name == name {
			if err := c.run(); err != nil {
				fmt.Fprintf(os.Stderr, "owbench %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "owbench: unknown experiment %q\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: owbench <experiment>")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", c.name, c.desc)
	}
	fmt.Fprintln(os.Stderr, "  all        run every experiment")
}
