// Command owbench regenerates every table and figure of the OptiWISE paper
// evaluation on the simulated substrate:
//
//	owbench fig1      motivating example: samples vs counts vs CPI
//	owbench fig2      pipeline timeline and never-sampled instructions
//	owbench fig7      tool overhead across the 23-benchmark suite
//	owbench fig8      x86 sample skid around a long-latency store
//	owbench fig9      Neoverse-style early-dequeue sampling displacement
//	owbench fig10     annotated cost_compare disassembly (505.mcf)
//	owbench table1    loop-merging iterations on the figure 6 CFG
//	owbench mcf       case study A: comparator/divide/unroll optimizations
//	owbench deepsjeng case study B: prefetch + divide removal
//	owbench bwaves    case study C: divide-by-invariant inversion
//	owbench tiered    tiered profiling overhead/accuracy frontier
//	owbench ablate    design-choice ablations (DESIGN.md §4)
//	owbench all       everything above
//
// Observability flags (before the experiment name):
//
//	owbench -progress -trace trace.json -metrics metrics.prom fig7
//
// Experiment output goes to stdout; diagnostics go through the obs
// structured logger on stderr (or as JSONL via -log), so the two streams
// are separable.
//
// Shape, not absolute numbers, is the reproduction target: who wins, by
// roughly what factor, and where the worst cases fall. EXPERIMENTS.md
// records paper-vs-measured for each experiment.
package main

import (
	"flag"
	"fmt"
	"os"

	"optiwise"
	"optiwise/internal/fault"
	"optiwise/internal/obs"
)

var commands = []struct {
	name string
	desc string
	run  func() error
}{
	{"fig1", "motivating example: samples vs counts vs CPI", fig1},
	{"fig2", "pipeline timeline and never-sampled instructions", fig2},
	{"fig7", "tool overhead across the 23-benchmark suite", fig7},
	{"fig8", "x86 sample skid around a long-latency store", fig8},
	{"fig9", "N1 early-dequeue sampling displacement", fig9},
	{"fig10", "annotated cost_compare disassembly", fig10},
	{"table1", "loop-merging iterations on the figure 6 CFG", table1},
	{"mcf", "case study A: 505.mcf", caseMCF},
	{"deepsjeng", "case study B: 531.deepsjeng", caseDeepsjeng},
	{"bwaves", "case study C: 603.bwaves", caseBwaves},
	{"accuracy", "sampling accuracy vs ground truth, by granularity", accuracyExp},
	{"tiered", "tiered profiling overhead/accuracy frontier", tieredCmd},
	{"ablate", "design-choice ablations", ablate},
}

// sequential, when set, makes every experiment run its two profiling
// passes back-to-back instead of overlapped. The output is identical
// either way (see DESIGN.md §7); the flag exists for timing
// comparisons and for debugging with a deterministic goroutine count.
var sequential *bool

// obsCfg is the activated observability configuration; progress output
// is owned by the config (not a package global) so that library users
// of obs can run concurrently, but the single-process owbench keeps one
// shared handle.
var obsCfg *obs.Config

// profile runs the standard pipeline with the global -sequential
// execution strategy applied.
func profile(prog *optiwise.Program, opts optiwise.Options) (*optiwise.Result, error) {
	opts.Sequential = *sequential
	return optiwise.Profile(prog, opts)
}

func main() {
	fs := flag.NewFlagSet("owbench", flag.ExitOnError)
	fs.Usage = usage
	sequential = fs.Bool("sequential", false, "run profiling passes sequentially (identical output; for timing comparisons)")
	faultSpec := fs.String("fault", "", "fault-injection spec (also OPTIWISE_FAULT); benchmarks must normally run fault-free")
	obsCfg = obs.BindFlags(fs)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if err := fault.ActivateFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "owbench:", err)
		os.Exit(2)
	}
	if *faultSpec != "" {
		if err := fault.Activate(*faultSpec); err != nil {
			fmt.Fprintln(os.Stderr, "owbench:", err)
			os.Exit(2)
		}
	}
	if fs.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := fs.Arg(0)
	flush, err := obsCfg.Activate()
	if err != nil {
		obs.Error("owbench: observability setup failed", obs.F("err", err.Error()))
		os.Exit(1)
	}
	code := dispatch(name)
	if err := flush(); err != nil {
		obs.Error("owbench: flushing observability output failed",
			obs.F("err", err.Error()))
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// dispatch runs the named experiment (or all of them) and returns the
// process exit code. Failures are reported through the structured
// logger so they stay separable from experiment output on stdout.
func dispatch(name string) int {
	if name == "all" {
		for i, c := range commands {
			fmt.Printf("==================== %s ====================\n", c.name)
			obsCfg.Progressf("[%d/%d] %s: %s", i+1, len(commands), c.name, c.desc)
			sw := obs.StartTimer()
			if err := c.run(); err != nil {
				obs.Error("owbench experiment failed",
					obs.F("experiment", c.name), obs.F("err", err.Error()))
				return 1
			}
			obs.Info("owbench experiment done",
				obs.F("experiment", c.name), obs.F("seconds", sw.Seconds()))
			fmt.Println()
		}
		return 0
	}
	for _, c := range commands {
		if c.name == name {
			sw := obs.StartTimer()
			if err := c.run(); err != nil {
				obs.Error("owbench experiment failed",
					obs.F("experiment", name), obs.F("err", err.Error()))
				return 1
			}
			obs.Info("owbench experiment done",
				obs.F("experiment", name), obs.F("seconds", sw.Seconds()))
			return 0
		}
	}
	obs.Error("owbench: unknown experiment", obs.F("experiment", name))
	usage()
	return 2
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: owbench [flags] <experiment>")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", c.name, c.desc)
	}
	fmt.Fprintln(os.Stderr, "  all        run every experiment")
	fmt.Fprintln(os.Stderr, `flags:
  -trace FILE   Chrome trace-event JSON (chrome://tracing / Perfetto)
  -metrics FILE Prometheus text exposition of pipeline metrics
  -log FILE     JSONL structured event log ("-" = stderr)
  -progress     per-workload progress lines on stderr
  -pprof ADDR   serve net/http/pprof + expvar on ADDR`)
}
