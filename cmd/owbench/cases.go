package main

import (
	"fmt"

	"optiwise"
	"optiwise/internal/obs"
)

// caseMCF reproduces case study A (§VI-A): OptiWISE evidence on the
// baseline, then speedups from the three optimizations it suggests.
func caseMCF() error {
	cfg := optiwise.DefaultMCFConfig()
	prog, err := optiwise.MCFProgram(cfg)
	if err != nil {
		return err
	}
	prof, err := profile(prog, optiwise.Options{SamplePeriod: 1000})
	if err != nil {
		return err
	}
	fmt.Println("Case study A: 505.mcf")
	fmt.Println("\n-- OptiWISE evidence on the baseline --")
	if qs, ok := prof.FuncByName("spec_qsort"); ok {
		fmt.Printf("spec_qsort total time (incl. callees): %.1f%% (paper: 61.1%%)\n",
			100*qs.TimeFrac)
	}
	if cc, ok := prof.FuncByName("cost_compare"); ok {
		fmt.Printf("cost_compare self time: %.1f%%, IPC %.2f (paper: 23.7%%)\n",
			100*float64(cc.SelfCycles)/float64(prof.TotalCycles), cc.IPC)
	}
	// The divide inside spec_qsort.
	var divCPI float64
	for _, r := range prof.Insts {
		if r.Func == "spec_qsort" && r.Inst.Op.String() == "div" && r.CPI > divCPI {
			divCPI = r.CPI
		}
	}
	fmt.Printf("spec_qsort divide CPI: %.2f (paper: 38.12)\n", divCPI)
	if l, ok := prof.LoopByHeader(loopHeaderOf(prof, "primal_bea_mpp")); ok {
		fmt.Printf("primal_bea_mpp loop: %.1f inst/iteration over %d iterations "+
			"(paper: 18.6 and ~4000/invocation)\n", l.InstsPerIter, l.Iterations)
	}

	fmt.Println("\n-- optimizations --")
	base, err := cyclesOf(optiwise.MCFProgram, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s %12s %9s\n", "VARIANT", "CYCLES", "SPEEDUP")
	fmt.Printf("%-34s %12d %9s\n", "baseline", base, "-")
	variants := []struct {
		name string
		opts optiwise.MCFOptions
	}{
		{"branch-free comparators (cmov)", optiwise.MCFOptions{BranchFree: true}},
		{"divide -> fixed-point multiply", optiwise.MCFOptions{StrengthReduce: true}},
		{"primal_bea_mpp unrolled x4", optiwise.MCFOptions{Unroll: true}},
		{"all three", optiwise.MCFOptions{BranchFree: true, StrengthReduce: true, Unroll: true}},
	}
	for _, v := range variants {
		c := cfg
		c.Opts = v.opts
		cy, err := cyclesOf(optiwise.MCFProgram, c)
		if err != nil {
			return err
		}
		fmt.Printf("%-34s %12d %8.1f%%\n", v.name, cy, 100*(float64(base)/float64(cy)-1))
	}
	fmt.Println("paper: the three optimizations combined give +12% on 'ref'")
	return nil
}

// caseDeepsjeng reproduces case study B (§VI-B).
func caseDeepsjeng() error {
	cfg := optiwise.DefaultDeepsjengConfig()
	prog, err := optiwise.DeepsjengProgram(cfg)
	if err != nil {
		return err
	}
	prof, err := profile(prog, optiwise.Options{SamplePeriod: 1000})
	if err != nil {
		return err
	}
	fmt.Println("Case study B: 531.deepsjeng")
	fmt.Println("\n-- OptiWISE evidence on the baseline --")
	if pt, ok := prof.FuncByName("probett"); ok {
		fmt.Printf("probett total time: %.1f%%, self IPC %.2f (paper: 16.7%%, IPC 0.16)\n",
			100*pt.TimeFrac, pt.IPC)
		// The dominant load inside probett.
		var best float64
		var bestCycles, ptCycles uint64
		for _, r := range prof.Insts {
			if r.Func == "probett" {
				ptCycles += r.Cycles
				if r.Inst.Op.String() == "ld" && r.CPI > best {
					best = r.CPI
					bestCycles = r.Cycles
				}
			}
		}
		if ptCycles > 0 {
			fmt.Printf("transposition-table load: CPI %.1f, %.0f%% of probett time "+
				"(paper: CPI 279, 81%%)\n", best, 100*float64(bestCycles)/float64(ptCycles))
		}
	}

	fmt.Println("\n-- optimizations --")
	base, err := cyclesOf(optiwise.DeepsjengProgram, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s %12s %9s\n", "VARIANT", "CYCLES", "SPEEDUP")
	fmt.Printf("%-34s %12d %9s\n", "baseline", base, "-")
	variants := []struct {
		name string
		opts optiwise.DeepsjengOptions
	}{
		{"early prefetch", optiwise.DeepsjengOptions{Prefetch: true}},
		{"divide removed from hash", optiwise.DeepsjengOptions{RemoveDiv: true}},
		{"both", optiwise.DeepsjengOptions{Prefetch: true, RemoveDiv: true}},
	}
	for _, v := range variants {
		c := cfg
		c.Opts = v.opts
		cy, err := cyclesOf(optiwise.DeepsjengProgram, c)
		if err != nil {
			return err
		}
		fmt.Printf("%-34s %12d %8.1f%%\n", v.name, cy, 100*(float64(base)/float64(cy)-1))
	}
	fmt.Println("paper: both combined give +6.8% on 'ref'")
	return nil
}

// caseBwaves reproduces case study C (§VI-C).
func caseBwaves() error {
	cfg := optiwise.DefaultBwavesConfig()
	prog, err := optiwise.BwavesProgram(cfg)
	if err != nil {
		return err
	}
	prof, err := profile(prog, optiwise.Options{SamplePeriod: 1000})
	if err != nil {
		return err
	}
	fmt.Println("Case study C: 603.bwaves")
	fmt.Println("\n-- OptiWISE evidence on the baseline --")
	var divCPI, divFrac float64
	for _, r := range prof.Insts {
		if r.Inst.Op.String() == "fdiv" {
			divCPI = r.CPI
			divFrac = float64(r.Cycles) / float64(prof.TotalCycles)
		}
	}
	fmt.Printf("flux kernel fdiv: CPI %.1f, %.1f%% of total time "+
		"(divisor is loop-invariant)\n", divCPI, 100*divFrac)
	if fd, ok := prof.FuncByName("flux_div_kernel"); ok {
		fmt.Printf("flux_div_kernel: %.1f%% of time\n", 100*fd.TimeFrac)
	}

	fmt.Println("\n-- optimization --")
	base, err := cyclesOf(optiwise.BwavesProgram, cfg)
	if err != nil {
		return err
	}
	c := cfg
	c.Opts = optiwise.BwavesOptions{InvertDiv: true}
	opt, err := cyclesOf(optiwise.BwavesProgram, c)
	if err != nil {
		return err
	}
	fmt.Printf("baseline: %d cycles\n", base)
	fmt.Printf("multiply by precomputed 1/dt: %d cycles, speedup %.1f%%\n",
		opt, 100*(float64(base)/float64(opt)-1))
	fmt.Println("paper: +2% on 'ref' (the divide kernel is a minority of the program)")
	return nil
}

// cyclesOf builds and natively runs a case-study program, checking that
// the optimized variants still compute the right answer.
func cyclesOf[C any](build func(C) (*optiwise.Program, error), cfg C) (uint64, error) {
	prog, err := build(cfg)
	if err != nil {
		return 0, err
	}
	res, err := prog.Run(optiwise.XeonW2195())
	if err != nil {
		return 0, err
	}
	if prog.Module() == "505.mcf" && res.ExitCode != 0 {
		obs.Warn("case-study verification failed",
			obs.F("module", prog.Module()), obs.F("exit_code", res.ExitCode))
	}
	return res.Cycles, nil
}

// loopHeaderOf finds the header offset of the hottest loop inside fn.
func loopHeaderOf(prof *optiwise.Result, fn string) uint64 {
	for _, l := range prof.Loops { // sorted hottest-first
		if l.Func == fn {
			return l.HeaderOffset
		}
	}
	return 0
}
