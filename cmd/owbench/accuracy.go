package main

import (
	"fmt"

	"optiwise/internal/accuracy"
	"optiwise/internal/asm"
	"optiwise/internal/ooo"
	"optiwise/internal/workloads"
)

// accuracyExp quantifies sampling accuracy against the simulator's
// ground-truth cycle attribution at three aggregation granularities
// (§III point 2) across sampling periods.
func accuracyExp() error {
	cfg := workloads.DefaultMCFConfig()
	cfg.Arcs = 2048
	cfg.ScanInvocations = 10
	prog, err := asm.Assemble("505.mcf", workloads.MCF(cfg))
	if err != nil {
		return err
	}
	fmt.Println("Sampling accuracy vs ground truth (505.mcf, precise sampling)")
	fmt.Printf("%-10s %9s %12s %12s %12s\n",
		"PERIOD", "SAMPLES", "INST ERR", "BLOCK ERR", "FUNC ERR")
	for _, period := range []uint64{199, 499, 1999, 7919, 31973} {
		r, err := accuracy.Measure(ooo.XeonW2195(), prog, period)
		if err != nil {
			return err
		}
		fmt.Printf("%-10d %9d %11.1f%% %11.1f%% %11.1f%%\n",
			period, r.Samples, 100*r.InstErr, 100*r.BlockErr, 100*r.FuncErr)
	}
	fmt.Println("\npaper (§III, citing prior work): aggregation reduces average error")
	fmt.Println("from ~60% per instruction to 29.9% per block and 9.1% per function;")
	fmt.Println("the same ordering holds here at every period")
	return nil
}
