package main

import (
	"fmt"
	"math"
	"sort"

	"optiwise"
	"optiwise/internal/isa"
	"optiwise/internal/loops"
	"optiwise/internal/ooo"
	"optiwise/internal/program"
	"optiwise/internal/workloads"
)

// fig1 reproduces the motivating example: for the hot loop, print the
// three views — sampling alone, counting alone, and the combined CPI —
// showing that only the last identifies the cache-missing load.
func fig1() error {
	prog, err := optiwise.Fig1Program()
	if err != nil {
		return err
	}
	prof, err := profile(prog, optiwise.Options{SamplePeriod: 500})
	if err != nil {
		return err
	}
	fmt.Println("Figure 1: sampling alone vs instrumentation alone vs combined CPI")
	fmt.Printf("%8s  %-22s %10s %10s %8s\n", "OFFSET", "INSTRUCTION", "SAMPLES", "EXEC", "CPI")
	// The loop body spans the and..bnez instructions (offsets 8*4..15*4).
	var maxCPI float64
	var maxOff uint64
	for off := uint64(8 * 4); off <= 15*4; off += 4 {
		r, ok := prof.InstAt(off)
		if !ok {
			continue
		}
		marker := ""
		if off == workloads.Fig1LoadOffset {
			marker = "  <- cache-missing load"
		}
		fmt.Printf("%8x  %-22s %10d %10d %8.2f%s\n",
			off, r.Disasm, r.Samples, r.ExecCount, r.CPI, marker)
		if r.CPI > maxCPI {
			maxCPI, maxOff = r.CPI, off
		}
	}
	fmt.Printf("\nhighest CPI: offset %#x (want %#x, the load) -> %s\n",
		maxOff, uint64(workloads.Fig1LoadOffset),
		map[bool]string{true: "REPRODUCED", false: "NOT reproduced"}[maxOff == workloads.Fig1LoadOffset])
	return nil
}

// fig2 prints the pipeline timeline of the figure 2 instruction sequence
// and the sample counts demonstrating that instructions which always
// commit behind an older instruction are never sampled.
func fig2() error {
	src := workloads.Fig2()
	p, err := optiwise.Assemble("fig2", src)
	if err != nil {
		return err
	}
	img := program.Load(p.Raw(), program.LoadOptions{})
	sim := ooo.New(ooo.XeonW2195(), img, ooo.Options{TraceLimit: 600, RandSeed: 7})
	if _, err := sim.Run(0); err != nil {
		return err
	}
	fmt.Println("Figure 2: pipeline timeline (two warmed-up loop iterations)")
	fmt.Printf("%4s %8s %-18s %9s %6s %6s %7s\n",
		"SEQ", "OFFSET", "INSTRUCTION", "DISPATCH", "START", "DONE", "COMMIT")
	tr := sim.Trace()
	for _, e := range tr {
		if e.Seq < 515 || e.Seq > 530 { // well past the cold-cache warmup
			continue
		}
		off, _ := img.AbsToOff(e.PC)
		inst, _ := p.Raw().InstAt(off)
		fmt.Printf("%4d %8x %-18s %9d %6d %6d %7d\n",
			e.Seq, off, isa.Disassemble(inst), e.Dispatch, e.Start, e.Done, e.Commit)
	}

	// Sampleability: which loop PCs ever get sampled.
	hist := make(map[uint64]uint64)
	sim2 := ooo.New(ooo.XeonW2195(), program.Load(p.Raw(), program.LoadOptions{}), ooo.Options{
		SamplePeriod: 211, // prime, avoids phase lock
		RandSeed:     7,
		OnSample: func(s ooo.Sample) {
			if off, ok := img.AbsToOff(s.PC); ok {
				hist[off]++
			}
		},
	})
	if _, err := sim2.Run(0); err != nil {
		return err
	}
	fmt.Println("\nsample counts per loop instruction (skid-mode periodic sampling):")
	never := 0
	for off := uint64(3 * 4); off <= 10*4; off += 4 {
		inst, _ := p.Raw().InstAt(off)
		note := ""
		if hist[off] == 0 {
			note = "  <- never sampled"
			never++
		}
		fmt.Printf("%8x  %-18s %8d%s\n", off, isa.Disassemble(inst), hist[off], note)
	}
	fmt.Printf("\n%d of 8 loop instructions can never be sampled (paper: instructions\n"+
		"that always commit in the same cycle as an older instruction)\n", never)
	return nil
}

// fig7 measures the tool overhead across the 23-benchmark suite.
func fig7() error {
	fmt.Println("Figure 7: OptiWISE overhead on the synthetic SPEC CPU2017 suite")
	fmt.Printf("%-16s %-5s %10s %9s %9s %9s %9s %8s %8s\n",
		"BENCHMARK", "LANG", "BASE(kcy)", "SAMPLE x", "INSTR x", "TOTAL x", "ANALYZE s",
		"SMP(KiB)", "EDG(KiB)")
	type row struct {
		name  string
		total float64
	}
	var rows []row
	logSampling, logInstr, logTotal := 0.0, 0.0, 0.0
	worst := row{}
	n := 0
	specs := optiwise.SuiteSpecs()
	for i, spec := range specs {
		obsCfg.Progressf("[%d/%d] %s: sampling + instrumenting + analyzing",
			i+1, len(specs), spec.Name)
		prog, err := optiwise.SuiteProgram(spec, 1.0)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		ov, err := optiwise.MeasureOverhead(prog, optiwise.Options{SamplePeriod: 2000})
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		fmt.Printf("%-16s %-5s %10d %9.2f %9.2f %9.2f %9.3f %8.1f %8.1f\n",
			spec.Name, spec.Lang, ov.BaselineCycles/1000,
			ov.SamplingRatio, ov.InstrumentationRatio, ov.TotalRatio,
			ov.AnalysisSeconds,
			float64(ov.SampleProfileBytes)/1024, float64(ov.EdgeProfileBytes)/1024)
		logSampling += math.Log(ov.SamplingRatio)
		logInstr += math.Log(ov.InstrumentationRatio)
		logTotal += math.Log(ov.TotalRatio)
		if ov.TotalRatio > worst.total {
			worst = row{spec.Name, ov.TotalRatio}
		}
		rows = append(rows, row{spec.Name, ov.TotalRatio})
		n++
	}
	fmt.Printf("\ngeomean: sampling %.2fx, instrumentation %.2fx, total %.2fx\n",
		math.Exp(logSampling/float64(n)), math.Exp(logInstr/float64(n)),
		math.Exp(logTotal/float64(n)))
	fmt.Printf("worst case: %s at %.1fx\n", worst.name, worst.total)
	fmt.Println("paper: sampling 1.01x, instrumentation geomean 7.1x (worst 56x,")
	fmt.Println("       xalancbmk), total geomean 8.1x (worst 57x)")
	return nil
}

// fig8 prints the paper-style sample table around the long-latency store.
func fig8() error {
	p, err := optiwise.Fig8Program()
	if err != nil {
		return err
	}
	img := program.Load(p.Raw(), program.LoadOptions{})
	hist := make(map[uint64]uint64)
	sim := ooo.New(ooo.XeonW2195(), img, ooo.Options{
		SamplePeriod: 211,
		RandSeed:     7,
		OnSample: func(s ooo.Sample) {
			if off, ok := img.AbsToOff(s.PC); ok {
				hist[off]++
			}
		},
	})
	if _, err := sim.Run(0); err != nil {
		return err
	}
	fmt.Println("Figure 8: skid sampling around a long-latency store (x86-style commit)")
	fmt.Printf("%8s  %-20s %10s  %s\n", "OFFSET", "INSTRUCTION", "SAMPLES", "NOTE")
	storeOff := uint64(workloads.Fig8StoreOffset)
	for off := storeOff - 8; off <= storeOff+17*4; off += 4 {
		inst, ok := p.Raw().InstAt(off)
		if !ok {
			continue
		}
		note := ""
		switch {
		case off == storeOff:
			note = "long-latency store"
		case (off-storeOff)%16 == 0 && off > storeOff:
			note = "commit group start"
		}
		fmt.Printf("%8x  %-20s %10d  %s\n", off, isa.Disassemble(inst), hist[off], note)
	}
	fmt.Println("\npaper: the store itself is rarely sampled; the mass lands after the")
	fmt.Println("stall clears, with moderate counts on each 4-wide commit-group leader")
	return nil
}

// fig9 prints the N1 early-dequeue histogram: samples land at the
// issue-queue back-pressure distance after the slow divide.
func fig9() error {
	p, err := optiwise.Fig9Program()
	if err != nil {
		return err
	}
	img := program.Load(p.Raw(), program.LoadOptions{})
	hist := make(map[uint64]uint64)
	sim := ooo.New(ooo.NeoverseN1(), img, ooo.Options{
		SamplePeriod: 397,
		RandSeed:     7,
		OnSample: func(s ooo.Sample) {
			if off, ok := img.AbsToOff(s.PC); ok {
				hist[off]++
			}
		},
	})
	if _, err := sim.Run(0); err != nil {
		return err
	}
	fmt.Println("Figure 9: N1-style early dequeue — samples vs distance from the divide")
	type entry struct {
		off uint64
		n   uint64
	}
	var entries []entry
	for off, n := range hist {
		entries = append(entries, entry{off, n})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].n > entries[j].n })
	div := uint64(workloads.Fig9DivOffset)
	for i, e := range entries {
		if i >= 8 {
			break
		}
		inst, _ := p.Raw().InstAt(e.off)
		fmt.Printf("  %6d samples at %#x (%s), %+d instructions from the divide\n",
			e.n, e.off, isa.Disassemble(inst), int64(e.off-div)/4)
	}
	if len(entries) > 0 {
		fmt.Printf("\npeak displacement: %+d instructions (paper: 48 — the issue-queue\n"+
			"back-pressure distance; ours is IQ size 48 plus issued-in-flight slack)\n",
			int64(entries[0].off-div)/4)
	}
	fmt.Printf("samples on the divide itself: %d\n", hist[div])
	return nil
}

// fig10 prints the annotated cost_compare disassembly from the mcf
// baseline profile.
func fig10() error {
	prog, err := optiwise.MCFProgram(optiwise.DefaultMCFConfig())
	if err != nil {
		return err
	}
	prof, err := profile(prog, optiwise.Options{SamplePeriod: 1000})
	if err != nil {
		return err
	}
	fmt.Println("Figure 10: cost_compare annotated disassembly (505.mcf baseline)")
	if err := optiwise.WriteAnnotated(fmtWriter{}, prof, "cost_compare"); err != nil {
		return err
	}
	fmt.Println("\npaper: the conditional jumps are expensive (mispredicts); the")
	fmt.Println("instructions following them are not -> rewrite branch-free")
	return nil
}

// table1 reproduces Table I: the loop-merging iterations on the figure 6
// CFG.
func table1() error {
	g := fig6Graph()
	raw := loops.Find(g)
	merged, trace := loops.MergeGroupTrace(raw, loops.DefaultThreshold)
	fmt.Println("Table I: Algorithm 2 iterations on the figure 6 CFG (T = 3)")
	fmt.Printf("natural loops (all sharing header): %d\n", len(raw))
	for _, r := range raw {
		fmt.Printf("  tail=%d blocks=%d backEdgeFreq=%d\n",
			r.Tail, len(r.Blocks), r.BackEdgeFreq)
	}
	for i, it := range trace {
		fmt.Printf("iteration %d:\n", i+1)
		fmt.Printf("  considered: %v\n", it.Considered)
		fmt.Printf("  peeled (merged into one program loop): %v\n", it.Peeled)
		fmt.Printf("  kept as nested: %v\n", it.Kept)
	}
	fmt.Printf("result: %d program loops (paper: 3 — three of five merged)\n", len(merged))
	for _, l := range merged {
		fmt.Printf("  header=%d blocks=%d freq=%d depth=%d\n",
			l.Header, len(l.Blocks), l.BackEdgeFreq, l.Depth)
	}
	return nil
}

// fig6Graph is the paper's figure 6 CFG with five same-header back edges.
type benchGraph struct {
	succs [][]int
	freq  map[[2]int]uint64
}

func (g *benchGraph) NumNodes() int     { return len(g.succs) }
func (g *benchGraph) Succs(n int) []int { return g.succs[n] }
func (g *benchGraph) EdgeFreq(from, to int) uint64 {
	return g.freq[[2]int{from, to}]
}

func fig6Graph() *benchGraph {
	g := &benchGraph{succs: make([][]int, 8), freq: make(map[[2]int]uint64)}
	edge := func(from, to int, f uint64) {
		g.succs[from] = append(g.succs[from], to)
		g.freq[[2]int{from, to}] = f
	}
	edge(0, 1, 1)
	edge(1, 5, 2373)
	edge(1, 7, 1)
	edge(5, 1, 2000) // X
	edge(5, 6, 373)
	edge(6, 1, 300) // Y
	edge(6, 2, 73)
	edge(2, 1, 50) // C
	edge(2, 3, 10)
	edge(2, 4, 12)
	edge(3, 1, 10) // A
	edge(4, 1, 12) // B
	return g
}

// fmtWriter adapts fmt printing to io.Writer for report helpers.
type fmtWriter struct{}

func (fmtWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
