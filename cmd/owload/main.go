// Command owload is the cluster load generator: thousands of
// concurrent synthetic clients submitting mixed workloads (drawn from
// the internal/workloads suite) against one or more optiwise serve
// frontends, with a configurable duplicate-key ratio exercising the
// cluster's cross-node dedup. It records sustained throughput, the
// job-latency percentile curve, and the dedup/cache counters the
// cluster claims (cached / coalesced / peer-fetched shares, forwards),
// and can merge labelled runs into one JSON file (BENCH_PR7.json) so a
// single-node baseline and a cluster run sit side by side.
//
// Usage:
//
//	owload -addr 127.0.0.1:8077,127.0.0.1:8078 -clients 200 -duration 30s \
//	       -dup 0.5 -label cluster3 -out BENCH_PR7.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"optiwise/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "owload:", err)
		os.Exit(1)
	}
}

type config struct {
	addrs    []string
	clients  int
	duration time.Duration
	dup      float64
	nSpecs   int
	scale    float64
	timeout  time.Duration
	seed     int64
	label    string
	out      string
	dupPool  int
	jsonOut  bool
	push     bool
}

func run(args []string) error {
	fs := flag.NewFlagSet("owload", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "comma-separated frontend addresses (host:port or URLs); clients spread across them and fail over on connection errors")
	clients := fs.Int("clients", 64, "concurrent synthetic clients")
	duration := fs.Duration("duration", 20*time.Second, "load duration")
	dup := fs.Float64("dup", 0.5, "duplicate-key ratio: probability a submission reuses a seed from the shared pool (identical job key) instead of a fresh one")
	dupPool := fs.Int("dup-pool", 16, "size of the shared duplicate-seed pool")
	nSpecs := fs.Int("workloads", 6, "distinct workload specs in the mix (from the synthetic suite)")
	scale := fs.Float64("scale", 0.02, "workload iteration scale factor (keep jobs short)")
	timeout := fs.Duration("timeout", 60*time.Second, "per-job deadline")
	seed := fs.Int64("seed", 1, "base RNG seed")
	label := fs.String("label", "run", "label for this run in the output JSON")
	out := fs.String("out", "", "merge this run's results into a JSON file keyed by label (e.g. BENCH_PR7.json); empty prints to stdout")
	jsonOut := fs.Bool("json", false, "print the per-run summary JSON to stdout even when -out is set (the dashboard-ingestion shape)")
	push := fs.Bool("push", false, "POST the per-run summary to each frontend's /api/v1/owload so the dashboard's cluster view renders it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := config{
		addrs:    splitAddrs(*addr),
		clients:  *clients,
		duration: *duration,
		dup:      *dup,
		nSpecs:   *nSpecs,
		scale:    *scale,
		timeout:  *timeout,
		seed:     *seed,
		label:    *label,
		out:      *out,
		dupPool:  *dupPool,
		jsonOut:  *jsonOut,
		push:     *push,
	}
	if len(cfg.addrs) == 0 {
		return fmt.Errorf("-addr wants at least one address")
	}
	if cfg.clients < 1 || cfg.nSpecs < 1 || cfg.dupPool < 1 {
		return fmt.Errorf("-clients, -workloads, and -dup-pool want >= 1")
	}
	if cfg.dup < 0 || cfg.dup > 1 {
		return fmt.Errorf("-dup wants a ratio in [0,1]")
	}
	res, err := drive(cfg)
	if err != nil {
		return err
	}
	return emit(cfg, res)
}

func splitAddrs(s string) []string {
	var out []string
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	for _, a := range fields {
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		out = append(out, strings.TrimRight(a, "/"))
	}
	return out
}

// prepared is one workload's ready-to-send submission template.
type prepared struct {
	name   string
	source string
}

// clientStats is one client's tally, merged after the run.
type clientStats struct {
	done, failed, rejected, transport uint64
	cached, coalesced, peerFetched    uint64
	latencies                         []float64 // ms, successful jobs only
	// computedBy counts, per job digest, how many of this client's
	// successful jobs were computed fresh (not cached, coalesced, or
	// peer-fetched) — the cross-client merge proves each duplicate key
	// computed exactly once.
	computedBy map[string]int
}

// runResult is the merged outcome written to the output JSON.
type runResult struct {
	Label        string      `json:"label"`
	Addrs        []string    `json:"addrs"`
	Clients      int         `json:"clients"`
	DurationSec  float64     `json:"duration_sec"`
	CPUs         int         `json:"cpus"`
	Workloads    []string    `json:"workloads"`
	DupRatio     float64     `json:"dup_ratio"`
	JobsDone     uint64      `json:"jobs_done"`
	JobsFailed   uint64      `json:"jobs_failed"`
	Rejected     uint64      `json:"rejected_429"`
	Transport    uint64      `json:"transport_errors"`
	Throughput   float64     `json:"throughput_jobs_per_sec"`
	Cached       uint64      `json:"served_cached"`
	Coalesced    uint64      `json:"served_coalesced"`
	PeerFetched  uint64      `json:"served_peer_fetched"`
	UniqueKeys   int         `json:"unique_keys"`
	MaxComputes  int         `json:"max_computations_per_key"`
	LatencyMS    latencies   `json:"latency_ms"`
	Nodes        []nodeTally `json:"nodes,omitempty"`
	GeneratedCmd string      `json:"command"`
}

type latencies struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// nodeTally is the slice of each node's /v1/stats the benchmark cares
// about, scraped after the run.
type nodeTally struct {
	Addr            string `json:"addr"`
	Inflight        int64  `json:"inflight,omitempty"`
	Jobs            int    `json:"jobs"`
	CacheEntries    int    `json:"cache_entries"`
	JobsPeerFetched uint64 `json:"jobs_peer_fetched"`
	Forwarded       uint64 `json:"forwarded,omitempty"`
	Failovers       uint64 `json:"forward_failovers,omitempty"`
	PeerFetchHits   uint64 `json:"peer_fetch_hits,omitempty"`
	PeerServed      uint64 `json:"peer_results_served,omitempty"`
	RingSize        int    `json:"ring_size,omitempty"`
}

func drive(cfg config) (*runResult, error) {
	specs := workloads.Suite()
	if cfg.nSpecs < len(specs) {
		specs = specs[:cfg.nSpecs]
	}
	progs := make([]prepared, len(specs))
	for i, s := range specs {
		progs[i] = prepared{name: s.Name, source: workloads.Generate(s.Scale(cfg.scale))}
	}

	client := &http.Client{Timeout: cfg.timeout + 30*time.Second}
	deadline := time.Now().Add(cfg.duration)
	tallies := make([]*clientStats, cfg.clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tallies[c] = runClient(cfg, client, progs, c, deadline)
		}(c)
	}
	wg.Wait()

	res := &runResult{
		Label:       cfg.label,
		Addrs:       cfg.addrs,
		Clients:     cfg.clients,
		DurationSec: cfg.duration.Seconds(),
		CPUs:        runtime.NumCPU(),
		DupRatio:    cfg.dup,
	}
	for _, p := range progs {
		res.Workloads = append(res.Workloads, p.name)
	}
	computed := make(map[string]int)
	var all []float64
	for _, t := range tallies {
		res.JobsDone += t.done
		res.JobsFailed += t.failed
		res.Rejected += t.rejected
		res.Transport += t.transport
		res.Cached += t.cached
		res.Coalesced += t.coalesced
		res.PeerFetched += t.peerFetched
		all = append(all, t.latencies...)
		for k, v := range t.computedBy {
			computed[k] += v
		}
	}
	res.UniqueKeys = len(computed)
	for _, v := range computed {
		if v > res.MaxComputes {
			res.MaxComputes = v
		}
	}
	res.Throughput = float64(res.JobsDone) / cfg.duration.Seconds()
	res.LatencyMS = summarize(all)
	for _, addr := range cfg.addrs {
		if nt, ok := scrapeStats(client, addr); ok {
			res.Nodes = append(res.Nodes, nt)
		}
	}
	return res, nil
}

// runClient is one synthetic client: submit, wait, tally, repeat until
// the deadline.
func runClient(cfg config, client *http.Client, progs []prepared, id int, deadline time.Time) *clientStats {
	t := &clientStats{computedBy: make(map[string]int)}
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)*7919))
	addrIdx := id % len(cfg.addrs)
	var unique int64 = int64(id) << 32 // disjoint per-client fresh-seed space
	for time.Now().Before(deadline) {
		p := progs[rng.Intn(len(progs))]
		var randSeed uint64
		if rng.Float64() < cfg.dup {
			// Shared pool: many clients submit this exact (program, seed)
			// pair, so its job key collides cluster-wide.
			randSeed = uint64(rng.Intn(cfg.dupPool)) + 1
		} else {
			unique++
			randSeed = uint64(unique) | 1<<62
		}
		body, err := json.Marshal(map[string]any{
			"module": p.name,
			"source": p.source,
			"options": map[string]any{
				"rand_seed": randSeed,
			},
			"timeout_ms": cfg.timeout.Milliseconds(),
			"wait":       true,
		})
		if err != nil {
			t.failed++
			continue
		}
		start := time.Now()
		status, outcome := submit(client, cfg.addrs, &addrIdx, body, deadline)
		switch outcome {
		case outcomeOK:
			t.done++
			t.latencies = append(t.latencies, float64(time.Since(start).Microseconds())/1000)
			key := status.Digest
			switch {
			case status.Cached:
				t.cached++
			case status.Coalesced:
				t.coalesced++
			case status.PeerFetched:
				t.peerFetched++
			default:
				t.computedBy[key]++
			}
			if _, ok := t.computedBy[key]; !ok {
				t.computedBy[key] = 0 // count the key even when it never computed here
			}
		case outcomeRejected:
			t.rejected++
		case outcomeTransport:
			t.transport++
		default:
			t.failed++
		}
	}
	return t
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeFailed
	outcomeRejected
	outcomeTransport
)

// jobStatus is the subset of the serve job status owload reads.
type jobStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Digest      string `json:"digest"`
	Cached      bool   `json:"cached"`
	Coalesced   bool   `json:"coalesced"`
	PeerFetched bool   `json:"peer_fetched"`
}

// submit POSTs one job with frontend failover and 429 backoff. The
// addr index rotates on transport errors so a killed frontend is
// abandoned by all its clients after one failed request each.
func submit(client *http.Client, addrs []string, addrIdx *int, body []byte, deadline time.Time) (jobStatus, outcome) {
	var st jobStatus
	for attempt := 0; ; attempt++ {
		if time.Now().After(deadline) && attempt > 0 {
			return st, outcomeTransport
		}
		addr := addrs[*addrIdx%len(addrs)]
		resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			*addrIdx++
			if attempt >= len(addrs) {
				return st, outcomeTransport
			}
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st)
			resp.Body.Close()
			if err != nil || st.State != "done" {
				return st, outcomeFailed
			}
			return st, outcomeOK
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Backpressure: honour Retry-After (capped — this is a load
			// generator, not a polite client) and try again. The retry
			// itself is the measurement: a saturated single node keeps
			// clients in this loop while a cluster absorbs them.
			wait := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			if wait > 2*time.Second {
				wait = 2 * time.Second
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain
			resp.Body.Close()
			time.Sleep(wait)
			return st, outcomeRejected
		default:
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain
			resp.Body.Close()
			return st, outcomeFailed
		}
	}
}

func summarize(ms []float64) latencies {
	if len(ms) == 0 {
		return latencies{}
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return latencies{
		P50:  pick(0.50),
		P90:  pick(0.90),
		P99:  pick(0.99),
		Mean: sum / float64(len(ms)),
		Max:  ms[len(ms)-1],
	}
}

// scrapeStats pulls the relevant counters from one node's /v1/stats.
func scrapeStats(client *http.Client, addr string) (nodeTally, bool) {
	nt := nodeTally{Addr: addr}
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return nt, false
	}
	defer resp.Body.Close()
	var stats struct {
		Inflight        int64  `json:"inflight"`
		Jobs            int    `json:"jobs"`
		CacheEntries    int    `json:"cache_entries"`
		JobsPeerFetched uint64 `json:"jobs_peer_fetched"`
		Cluster         *struct {
			RingSize      int    `json:"ring_size"`
			Forwarded     uint64 `json:"forwarded"`
			Failovers     uint64 `json:"forward_failovers"`
			PeerFetchHits uint64 `json:"peer_fetch_hits"`
			PeerServed    uint64 `json:"peer_results_served"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&stats); err != nil {
		return nt, false
	}
	nt.Inflight = stats.Inflight
	nt.Jobs = stats.Jobs
	nt.CacheEntries = stats.CacheEntries
	nt.JobsPeerFetched = stats.JobsPeerFetched
	if stats.Cluster != nil {
		nt.RingSize = stats.Cluster.RingSize
		nt.Forwarded = stats.Cluster.Forwarded
		nt.Failovers = stats.Cluster.Failovers
		nt.PeerFetchHits = stats.Cluster.PeerFetchHits
		nt.PeerServed = stats.Cluster.PeerServed
	}
	return nt, true
}

// emit writes the run result: merged into -out under the run label
// (read-modify-write so successive runs accumulate), or to stdout.
func emit(cfg config, res *runResult) error {
	res.GeneratedCmd = fmt.Sprintf("owload -addr %s -clients %d -duration %s -dup %g -workloads %d -scale %g",
		strings.Join(res.Addrs, ","), cfg.clients, cfg.duration, cfg.dup, cfg.nSpecs, cfg.scale)
	fmt.Fprintf(os.Stderr,
		"owload[%s]: %d done (%.1f jobs/s), %d failed, %d rejected, %d transport; latency p50=%.0fms p90=%.0fms p99=%.0fms; %d unique keys, max %d computations/key (cached=%d coalesced=%d peer=%d)\n",
		cfg.label, res.JobsDone, res.Throughput, res.JobsFailed, res.Rejected, res.Transport,
		res.LatencyMS.P50, res.LatencyMS.P90, res.LatencyMS.P99,
		res.UniqueKeys, res.MaxComputes, res.Cached, res.Coalesced, res.PeerFetched)
	if cfg.push {
		pushRun(res)
	}
	if cfg.out == "" || cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	}
	if cfg.out == "" {
		return nil
	}
	all := map[string]*runResult{}
	if data, err := os.ReadFile(cfg.out); err == nil {
		_ = json.Unmarshal(data, &all) //nolint:errcheck // a fresh file replaces garbage
	}
	all[cfg.label] = res
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.out, append(data, '\n'), 0o644)
}

// pushRun POSTs the summary to every frontend's owload-ingestion
// endpoint so any node's dashboard can render the run. Push failures
// warn and move on — the load numbers were already measured.
func pushRun(res *runResult) {
	body, err := json.Marshal(res)
	if err != nil {
		fmt.Fprintf(os.Stderr, "owload: push encode failed: %v\n", err)
		return
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for _, addr := range res.Addrs {
		resp, err := client.Post(addr+"/api/v1/owload", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintf(os.Stderr, "owload: push to %s failed: %v\n", addr, err)
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "owload: push to %s answered %s\n", addr, resp.Status)
			continue
		}
		fmt.Fprintf(os.Stderr, "owload: run %q pushed to %s/api/v1/owload\n", res.Label, addr)
	}
}
