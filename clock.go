package optiwise

import "time"

// nowSeconds returns a monotonic wall-clock reading used to time the
// analysis stage (§V-A reports analysis wall-clock separately from the
// profiled runs, which are measured in simulated cycles).
func nowSeconds() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}
