package optiwise

import (
	"bytes"
	"strings"
	"testing"

	"optiwise/internal/report"
)

// TestDegradedTieredCarriesBothBanners covers the degraded × tiered
// interaction: a tiered run whose instrumentation pass dies degrades to
// sampling-only, and the result must still render as tiered — both the
// DEGRADED and TIERED banners, and '~'-flagged estimates, through every
// renderer. A tiered profile that silently dropped its tiered-ness
// would pass extrapolated counts off as a plain (if partial) result.
func TestDegradedTieredCarriesBothBanners(t *testing.T) {
	prog, err := Assemble("tiered", tieredSrc)
	if err != nil {
		t.Fatal(err)
	}
	withFault(t, "dbi.run:error:nth=1,msg=dbi pass killed")
	prof, err := Profile(prog, Options{
		SamplePeriod: 500, RandSeed: 1,
		Tiered: true, HotThreshold: 0.05, AllowDegraded: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Degraded || prof.FailedPass != "instrumentation" {
		t.Fatalf("Degraded=%v FailedPass=%q, want sampling-only degradation",
			prof.Degraded, prof.FailedPass)
	}
	if !prof.Tiered {
		t.Fatal("degraded tiered run dropped the Tiered flag")
	}
	if len(prof.HotRanges) != 0 {
		t.Errorf("no instrumentation ran, yet HotRanges = %v", prof.HotRanges)
	}
	for _, f := range prof.Funcs {
		if !f.Estimated {
			t.Errorf("%s: time-share instruction estimate not flagged Estimated", f.Name)
		}
	}

	// Every renderer carries both banners.
	renderers := map[string]func(*bytes.Buffer) error{
		"summary":   func(b *bytes.Buffer) error { return report.WriteSummary(b, prof) },
		"functions": func(b *bytes.Buffer) error { return report.WriteFunctionTable(b, prof) },
		"all":       func(b *bytes.Buffer) error { return report.WriteAll(b, prof) },
		"csv":       func(b *bytes.Buffer) error { return report.WriteInstCSV(b, prof) },
		"loops-csv": func(b *bytes.Buffer) error { return report.WriteLoopCSV(b, prof) },
		"yaml":      func(b *bytes.Buffer) error { return report.WriteYAML(b, prof) },
	}
	for name, render := range renderers {
		var b bytes.Buffer
		if err := render(&b); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		out := b.String()
		if name == "yaml" {
			// YAML carries the flags and banner text as document fields
			// rather than comment lines.
			for _, want := range []string{"degraded: true", "tiered: true",
				"degraded_banner", "tiered_banner", "estimated: true"} {
				if !strings.Contains(out, want) {
					t.Errorf("yaml output missing %q", want)
				}
			}
			continue
		}
		for _, want := range []string{"DEGRADED RESULT", "TIERED PROFILE"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q banner:\n%.200s", name, want, out)
			}
		}
	}

	// The function table marks its estimates, and the CSV schema gains
	// the tiered estimated column.
	var funcs bytes.Buffer
	if err := report.WriteFunctionTable(&funcs, prof); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(funcs.String(), "~") {
		t.Error("function table shows no '~' estimate markers")
	}
	var csv bytes.Buffer
	if err := report.WriteInstCSV(&csv, prof); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), ",estimated") {
		t.Error("tiered CSV schema missing the estimated column")
	}

	// The JSON export carries all three flags.
	var js bytes.Buffer
	if err := prof.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"degraded":true`, `"tiered":true`, `"Estimated":true`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON export missing %s", want)
		}
	}
}
