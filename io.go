package optiwise

import (
	"io"

	"optiwise/internal/dbi"
	"optiwise/internal/sampler"
)

// ReadSampleProfile deserializes a sampling profile written by
// SampleProfile.Write.
func ReadSampleProfile(r io.Reader) (*SampleProfile, error) {
	return sampler.Read(r)
}

// ReadEdgeProfile deserializes an edge profile written by
// EdgeProfile.Write.
func ReadEdgeProfile(r io.Reader) (*EdgeProfile, error) {
	return dbi.Read(r)
}
