// Case study C (§VI-C of the paper): find the series of floating-point
// divides by a loop-invariant value in the 603.bwaves-shaped workload, and
// replace them with multiplication by a precomputed inverse — the
// optimization the compiler is not allowed to do without -ffast-math, but a
// programmer can justify.
//
// Run with:
//
//	go run ./examples/bwaves
package main

import (
	"fmt"
	"log"

	"optiwise"
)

func main() {
	cfg := optiwise.DefaultBwavesConfig()
	prog, err := optiwise.BwavesProgram(cfg)
	if err != nil {
		log.Fatal(err)
	}

	prof, err := optiwise.Profile(prog, optiwise.Options{SamplePeriod: 1000})
	if err != nil {
		log.Fatal(err)
	}

	// OptiWISE finding: significant time in FP divide instructions whose
	// divisor never changes within the run.
	for _, r := range prof.Insts {
		if r.Inst.Op.String() == "fdiv" {
			fmt.Printf("fdiv at +0x%x in %s: CPI %.1f, %.1f%% of program time\n",
				r.Offset, r.Func, r.CPI,
				100*float64(r.Cycles)/float64(prof.TotalCycles))
		}
	}
	if fd, ok := prof.FuncByName("flux_div_kernel"); ok {
		fmt.Printf("flux_div_kernel overall: %.1f%% of time\n", 100*fd.TimeFrac)
	}
	fmt.Println("=> a numerically-aware programmer can precompute 1/dt once")

	base, err := prog.Run(optiwise.XeonW2195())
	if err != nil {
		log.Fatal(err)
	}
	c := cfg
	c.Opts = optiwise.BwavesOptions{InvertDiv: true}
	op, err := optiwise.BwavesProgram(c)
	if err != nil {
		log.Fatal(err)
	}
	res, err := op.Run(optiwise.XeonW2195())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline:  %12d cycles\n", base.Cycles)
	fmt.Printf("optimized: %12d cycles  %+.1f%%\n",
		res.Cycles, 100*(float64(base.Cycles)/float64(res.Cycles)-1))
	fmt.Println("\n(paper: a modest +2% — the divide kernel is a minority of the run,")
	fmt.Println(" and the result stayed within SPEC's numerical tolerance)")
}
