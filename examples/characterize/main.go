// Suite characterization: run a slice of the synthetic SPEC CPU2017
// stand-in suite natively on both simulated machines and print the kind of
// microarchitectural characterization table architects build before any
// profiling — IPC, mispredict rate, and the per-function event rates the
// multi-event samples expose.
//
// Run with:
//
//	go run ./examples/characterize
package main

import (
	"fmt"
	"log"
	"os"

	"optiwise"
)

func main() {
	names := []string{
		"505.mcf", "523.xalancbmk", "531.deepsjeng", "519.lbm", "548.exchange2",
	}
	specs := map[string]optiwise.WorkloadSpec{}
	for _, s := range optiwise.SuiteSpecs() {
		specs[s.Name] = s
	}

	fmt.Printf("%-16s %-12s %10s %7s %10s\n",
		"BENCHMARK", "MACHINE", "CYCLES(k)", "IPC", "BR-MISS%")
	for _, name := range names {
		spec, ok := specs[name]
		if !ok {
			log.Fatalf("unknown benchmark %s", name)
		}
		prog, err := optiwise.SuiteProgram(spec, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range []optiwise.Machine{optiwise.XeonW2195(), optiwise.NeoverseN1()} {
			res, err := prog.Run(m)
			if err != nil {
				log.Fatal(err)
			}
			missRate := 0.0
			if res.Branches > 0 {
				missRate = 100 * float64(res.Mispredicts) / float64(res.Branches)
			}
			fmt.Printf("%-16s %-12s %10d %7.2f %9.1f%%\n",
				name, m.Name, res.Cycles/1000, res.IPC, missRate)
		}
	}

	// Event-rate drill-down on the most memory-bound benchmark.
	fmt.Println("\nper-function event rates (531.deepsjeng case study, Xeon):")
	prog, err := optiwise.DeepsjengProgram(optiwise.DefaultDeepsjengConfig())
	if err != nil {
		log.Fatal(err)
	}
	prof, err := optiwise.Profile(prog, optiwise.Options{SamplePeriod: 1000})
	if err != nil {
		log.Fatal(err)
	}
	if err := optiwise.WriteEventTable(os.Stdout, prof); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n(probett's MPKI is the smoking gun the CPI metric quantifies)")
}
