// Case study A (§VI-A of the paper): profile the 505.mcf-shaped workload,
// read the optimization opportunities straight off the OptiWISE report, and
// verify each suggested rewrite against the baseline.
//
// Run with:
//
//	go run ./examples/mcf
package main

import (
	"fmt"
	"log"
	"os"

	"optiwise"
)

func main() {
	cfg := optiwise.DefaultMCFConfig()
	prog, err := optiwise.MCFProgram(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== profiling the baseline ==")
	prof, err := optiwise.Profile(prog, optiwise.Options{SamplePeriod: 1000})
	if err != nil {
		log.Fatal(err)
	}
	if err := optiwise.WriteFunctionTable(os.Stdout, prof); err != nil {
		log.Fatal(err)
	}

	// Finding 1: the comparator called through the sort's function pointer
	// is hot and branch-bound. Look at its annotated disassembly.
	fmt.Println("\n== cost_compare, annotated (the paper's figure 10) ==")
	if err := optiwise.WriteAnnotated(os.Stdout, prof, "cost_compare"); err != nil {
		log.Fatal(err)
	}

	// Finding 2: a divide in spec_qsort with a run-constant second operand.
	for _, r := range prof.Insts {
		if r.Func == "spec_qsort" && r.Inst.Op.String() == "div" {
			fmt.Printf("\nspec_qsort divide at +0x%x: CPI %.1f (second operand is\n"+
				"always the element size -> fixed-point inverse)\n", r.Offset, r.CPI)
		}
	}

	// Finding 3: a short, hot, predictable loop: an unrolling candidate.
	for _, l := range prof.Loops {
		if l.Func == "primal_bea_mpp" {
			fmt.Printf("\nprimal_bea_mpp loop: %.1f instructions/iteration, "+
				"%.0f iterations/invocation -> unroll\n",
				l.InstsPerIter, float64(l.Iterations)/float64(l.Invocations))
		}
	}

	// Apply the rewrites and measure, exactly as the paper's author did.
	fmt.Println("\n== measuring the rewrites ==")
	base, err := prog.Run(optiwise.XeonW2195())
	if err != nil {
		log.Fatal(err)
	}
	variants := []struct {
		name string
		opts optiwise.MCFOptions
	}{
		{"branch-free comparators", optiwise.MCFOptions{BranchFree: true}},
		{"strength-reduced divide", optiwise.MCFOptions{StrengthReduce: true}},
		{"unrolled scan loop", optiwise.MCFOptions{Unroll: true}},
		{"all three", optiwise.MCFOptions{BranchFree: true, StrengthReduce: true, Unroll: true}},
	}
	for _, v := range variants {
		c := cfg
		c.Opts = v.opts
		vp, err := optiwise.MCFProgram(c)
		if err != nil {
			log.Fatal(err)
		}
		res, err := vp.Run(optiwise.XeonW2195())
		if err != nil {
			log.Fatal(err)
		}
		if res.ExitCode != 0 {
			log.Fatalf("%s: verification failed (exit %d)", v.name, res.ExitCode)
		}
		fmt.Printf("%-26s %12d cycles  %+.1f%%\n",
			v.name, res.Cycles, 100*(float64(base.Cycles)/float64(res.Cycles)-1))
	}
	fmt.Println("\n(paper: the combined rewrites gave +12% on the 'ref' input)")
}
