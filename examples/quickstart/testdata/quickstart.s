.module quickstart
.data
coeffs: .quad 3, 5, 7, 11
.text
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 2000          # outer trip count
.loc quickstart.c 12
outer:
    call poly
    addi s2, s2, -1
    bnez s2, outer
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc

.func poly
poly:
    la t0, coeffs
    li t1, 4             # coefficient count
    li a0, 1
.loc quickstart.c 22
ploop:
    ld t2, 0(t0)
    mul a0, a0, t2       # cheap multiply
.loc quickstart.c 24
    div a0, a0, t2       # expensive divide: the bottleneck
    addi a0, a0, 1
    addi t0, t0, 8
    addi t1, t1, -1
    bnez t1, ploop
    ret
.endfunc
