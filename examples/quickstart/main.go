// Quickstart: profile a small program end-to-end with OptiWISE and print
// the combined report.
//
// The program computes a polynomial over an array in a hot loop whose cost
// is dominated by one divide. Sampling alone smears the time; counting
// alone is uniform; the combined profile puts a hard CPI number on every
// instruction.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"optiwise"
)

const source = `
.module quickstart
.data
coeffs: .quad 3, 5, 7, 11
.text
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 2000          # outer trip count
.loc quickstart.c 12
outer:
    call poly
    addi s2, s2, -1
    bnez s2, outer
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc

.func poly
poly:
    la t0, coeffs
    li t1, 4             # coefficient count
    li a0, 1
.loc quickstart.c 22
ploop:
    ld t2, 0(t0)
    mul a0, a0, t2       # cheap multiply
.loc quickstart.c 24
    div a0, a0, t2       # expensive divide: the bottleneck
    addi a0, a0, 1
    addi t0, t0, 8
    addi t1, t1, -1
    bnez t1, ploop
    ret
.endfunc
`

func main() {
	prog, err := optiwise.Assemble("quickstart", source)
	if err != nil {
		log.Fatal(err)
	}

	// A plain run first: the baseline performance.
	base, err := prog.Run(optiwise.XeonW2195())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d instructions in %d cycles (IPC %.2f)\n\n",
		base.Instructions, base.Cycles, base.IPC)

	// The full OptiWISE pipeline: sampling run + instrumentation run +
	// combining analysis.
	prof, err := optiwise.Profile(prog, optiwise.Options{SamplePeriod: 500})
	if err != nil {
		log.Fatal(err)
	}
	if err := optiwise.WriteReport(os.Stdout, prof); err != nil {
		log.Fatal(err)
	}

	// Programmatic access: what single instruction costs the most?
	hot, _ := prof.HottestInst()
	fmt.Printf("\nhottest instruction: %s at +0x%x in %s (CPI %.1f)\n",
		hot.Disasm, hot.Offset, hot.Func, hot.CPI)
	fmt.Println("=> the divide dominates; precompute or strength-reduce it")
}
