// Quickstart: profile a small program end-to-end with OptiWISE and print
// the combined report.
//
// The program computes a polynomial over an array in a hot loop whose cost
// is dominated by one divide. Sampling alone smears the time; counting
// alone is uniform; the combined profile puts a hard CPI number on every
// instruction.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"

	"optiwise"
)

// The program lives in testdata/quickstart.s (outside the Go build,
// which would otherwise mistake .s for Go assembly) so the same file
// can be submitted to the profiling service (`optiwise submit`) or
// assembled directly.
//
//go:embed testdata/quickstart.s
var source string

func main() {
	prog, err := optiwise.Assemble("quickstart", source)
	if err != nil {
		log.Fatal(err)
	}

	// A plain run first: the baseline performance.
	base, err := prog.Run(optiwise.XeonW2195())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d instructions in %d cycles (IPC %.2f)\n\n",
		base.Instructions, base.Cycles, base.IPC)

	// The full OptiWISE pipeline: sampling run + instrumentation run +
	// combining analysis.
	prof, err := optiwise.Profile(prog, optiwise.Options{SamplePeriod: 500})
	if err != nil {
		log.Fatal(err)
	}
	if err := optiwise.WriteReport(os.Stdout, prof); err != nil {
		log.Fatal(err)
	}

	// Programmatic access: what single instruction costs the most?
	hot, _ := prof.HottestInst()
	fmt.Printf("\nhottest instruction: %s at +0x%x in %s (CPI %.1f)\n",
		hot.Disasm, hot.Offset, hot.Func, hot.CPI)
	fmt.Println("=> the divide dominates; precompute or strength-reduce it")
}
