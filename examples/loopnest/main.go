// Loop analysis walkthrough: OptiWISE's merged-loop view on a program with
// nested loops, a continue-style control path sharing the outer loop's
// header, and a function called from inside the nest.
//
// This exercises the paper's §IV-D stack profiling (the callee's time and
// instruction counts are attributed into the calling loop) and §IV-E loop
// merging (the continue path does NOT appear as a separate loop; the
// genuinely nested hot loop does).
//
// Run with:
//
//	go run ./examples/loopnest
package main

import (
	"fmt"
	"log"
	"os"

	"optiwise"
)

const source = `
.module loopnest
.text
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 150           # outer trip count
.loc nest.c 10
outer:
    # continue-style path: odd iterations skip straight to the latch,
    # creating a second back edge that shares the outer header.
    andi t0, s2, 1
    bnez t0, latch
    # inner nest: genuinely nested loop, high trip count
    li s3, 40
.loc nest.c 15
inner:
    call leaf
    addi s3, s3, -1
    bnez s3, inner
.loc nest.c 18
latch:
    addi s2, s2, -1
    bnez s2, outer
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func leaf
leaf:
.loc nest.c 25
    li t1, 6
ll:
    div t2, t1, t1       # slow op: the nest's real cost lives here
    addi t1, t1, -1
    bnez t1, ll
    ret
.endfunc
`

func main() {
	prog, err := optiwise.Assemble("loopnest", source)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := optiwise.Profile(prog, optiwise.Options{SamplePeriod: 400})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("merged-loop table (indentation = nesting depth):")
	if err := optiwise.WriteLoopTable(os.Stdout, prof); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nwhat to notice:")
	fmt.Println(" * main has TWO back edges to 'outer' (the continue path and the")
	fmt.Println("   latch) but the table shows ONE outer loop: Algorithm 2 merged them")
	fmt.Println(" * the inner loop appears separately, nested under the outer loop")
	fmt.Println(" * leaf's div loop appears under leaf, yet the outer/inner loops'")
	fmt.Println("   CPI and instruction totals include leaf's work — that is the")
	fmt.Println("   stack-profiling attribution of §IV-D, not a guess from call ratios")

	for _, l := range prof.Loops {
		fmt.Printf("loop %d in %-6s depth %d: %6d iterations, %5d invocations, "+
			"total %.0f%% of time\n",
			l.ID, l.Func, l.Depth, l.Iterations, l.Invocations, 100*l.TimeFrac)
	}
}
