// Case study B (§VI-B of the paper): find the transposition-table cache
// miss in the 531.deepsjeng-shaped workload via its extreme per-instruction
// CPI, then hide it with an early prefetch.
//
// Run with:
//
//	go run ./examples/deepsjeng
package main

import (
	"fmt"
	"log"

	"optiwise"
)

func main() {
	cfg := optiwise.DefaultDeepsjengConfig()
	prog, err := optiwise.DeepsjengProgram(cfg)
	if err != nil {
		log.Fatal(err)
	}

	prof, err := optiwise.Profile(prog, optiwise.Options{SamplePeriod: 1000})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's workflow: probett has an unremarkable time share but a
	// terrible IPC — that contrast is what flags it.
	pt, ok := prof.FuncByName("probett")
	if !ok {
		log.Fatal("probett missing from profile")
	}
	fmt.Printf("probett: %.1f%% of time, self IPC %.2f\n", 100*pt.TimeFrac, pt.IPC)
	fmt.Println("(a flat profile by time; the IPC is what gives it away)")

	// Drill into the per-instruction CPI: one load dominates.
	var best struct {
		off uint64
		cpi float64
		dis string
	}
	for _, r := range prof.Insts {
		if r.Func == "probett" && r.CPI > best.cpi {
			best.off, best.cpi, best.dis = r.Offset, r.CPI, r.Disasm
		}
	}
	fmt.Printf("\nhottest probett instruction: %s (CPI %.0f)\n", best.dis, best.cpi)
	fmt.Println("=> a CPI in the hundreds means the load misses every cache level and")
	fmt.Println("   no ILP hides it; even dozens of extra instructions are justified")
	fmt.Println("   if they eliminate the miss (the paper's reasoning verbatim)")

	// Apply the two rewrites.
	base, err := prog.Run(optiwise.XeonW2195())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline: %d cycles\n", base.Cycles)
	for _, v := range []struct {
		name string
		opts optiwise.DeepsjengOptions
	}{
		{"early prefetch", optiwise.DeepsjengOptions{Prefetch: true}},
		{"divide removed", optiwise.DeepsjengOptions{RemoveDiv: true}},
		{"both", optiwise.DeepsjengOptions{Prefetch: true, RemoveDiv: true}},
	} {
		c := cfg
		c.Opts = v.opts
		vp, err := optiwise.DeepsjengProgram(c)
		if err != nil {
			log.Fatal(err)
		}
		res, err := vp.Run(optiwise.XeonW2195())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12d cycles  %+.1f%%\n",
			v.name, res.Cycles, 100*(float64(base.Cycles)/float64(res.Cycles)-1))
	}
	fmt.Println("\n(paper: both combined gave +6.8% on the 'ref' input)")
}
