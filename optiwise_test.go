package optiwise

import (
	"bytes"
	"strings"
	"testing"
)

const quickSrc = `
.module quick
.text
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 300
.loc quick.c 3
outer:
    call kernel
    addi s2, s2, -1
    bnez s2, outer
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func kernel
kernel:
    li t0, 60
.loc quick.c 9
kl:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, kl
    ret
.endfunc
`

func TestAssembleAndRun(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Module() != "quick" {
		t.Errorf("module = %q", p.Module())
	}
	res, err := p.Run(XeonW2195())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 || res.Cycles == 0 || res.Instructions == 0 {
		t.Errorf("run result = %+v", res)
	}
	ires, err := p.Interpret()
	if err != nil {
		t.Fatal(err)
	}
	if ires.Instructions != res.Instructions {
		t.Errorf("interpreter retired %d, pipeline %d", ires.Instructions, res.Instructions)
	}
}

func TestAssembleError(t *testing.T) {
	if _, err := Assemble("bad", "frobnicate a0"); err == nil {
		t.Error("bad source accepted")
	}
}

func TestEndToEndProfile(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(p, Options{SamplePeriod: 500})
	if err != nil {
		t.Fatal(err)
	}
	kernel, ok := prof.FuncByName("kernel")
	if !ok {
		t.Fatal("kernel missing from profile")
	}
	if kernel.TimeFrac < 0.8 {
		t.Errorf("kernel time frac = %.2f, want dominant", kernel.TimeFrac)
	}
	if len(prof.Loops) != 2 {
		t.Errorf("loops = %d, want 2", len(prof.Loops))
	}
	hot, ok := prof.HottestInst()
	if !ok || hot.Func != "kernel" {
		t.Errorf("hottest inst = %+v", hot)
	}
}

func TestStagedPipelineMatchesProfile(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{SamplePeriod: 500}
	sp, _, err := SampleOnly(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := InstrumentOnly(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := Analyze(p, sp, ep, opts)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := Profile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if staged.TotalInsts != oneShot.TotalInsts || staged.TotalSamples != oneShot.TotalSamples {
		t.Error("staged pipeline diverged from one-shot Profile")
	}
}

func TestReportWriters(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(p, Options{SamplePeriod: 500})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, prof); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"module quick", "kernel", "LOOP", "quick.c:9"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	for _, fn := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return WriteFunctionTable(b, prof) },
		func(b *bytes.Buffer) error { return WriteLoopTable(b, prof) },
		func(b *bytes.Buffer) error { return WriteAnnotated(b, prof, "kernel") },
		func(b *bytes.Buffer) error { return WriteInstCSV(b, prof) },
		func(b *bytes.Buffer) error { return WriteLoopCSV(b, prof) },
	} {
		buf.Reset()
		if err := fn(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Error("writer produced nothing")
		}
	}
}

func TestMeasureOverhead(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := MeasureOverhead(p, Options{SamplePeriod: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if ov.SamplingRatio < 1.0 || ov.SamplingRatio > 1.5 {
		t.Errorf("sampling ratio = %.3f, want near 1", ov.SamplingRatio)
	}
	if ov.InstrumentationRatio < 1.0 {
		t.Errorf("instrumentation ratio = %.2f, want > 1", ov.InstrumentationRatio)
	}
	if ov.TotalRatio <= ov.InstrumentationRatio {
		t.Error("total should include both runs")
	}
	if ov.AnalysisSeconds < 0 {
		t.Error("negative analysis time")
	}
}

func TestWorkloadReexports(t *testing.T) {
	specs := SuiteSpecs()
	if len(specs) != 23 {
		t.Fatalf("suite = %d", len(specs))
	}
	p, err := SuiteProgram(specs[0], 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Interpret(); err != nil {
		t.Fatal(err)
	}
	for _, build := range []func() (*Program, error){
		Fig1Program, Fig2Program, Fig8Program, Fig9Program,
	} {
		if _, err := build(); err != nil {
			t.Fatal(err)
		}
	}
	mcfCfg := DefaultMCFConfig()
	mcfCfg.Arcs = 128
	mcfCfg.ScanInvocations = 1
	mp, err := MCFProgram(mcfCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mp.Interpret()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Errorf("mcf exit = %d", res.ExitCode)
	}
	dcfg := DefaultDeepsjengConfig()
	dcfg.Nodes = 100
	if _, err := DeepsjengProgram(dcfg); err != nil {
		t.Fatal(err)
	}
	bcfg := DefaultBwavesConfig()
	bcfg.Sweeps = 1
	if _, err := BwavesProgram(bcfg); err != nil {
		t.Fatal(err)
	}
}

func TestPreciseOption(t *testing.T) {
	p, err := Fig1Program()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(p, Options{SamplePeriod: 600, Precise: true})
	if err != nil {
		t.Fatal(err)
	}
	hot, _ := prof.HottestInst()
	if hot.Inst.Op.String() != "ld" {
		t.Errorf("precise profile hottest = %s, want the ld", hot.Disasm)
	}
}

func TestBinaryRoundTripThroughPublicAPI(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Run(XeonW2195())
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Run(XeonW2195())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.ExitCode != b.ExitCode {
		t.Error("binary round trip changed behaviour")
	}
}

func TestDisableStackProfiling(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Profile(p, Options{SamplePeriod: 500})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Profile(p, Options{SamplePeriod: 500, DisableStackProfiling: true})
	if err != nil {
		t.Fatal(err)
	}
	mw, _ := with.FuncByName("main")
	mo, _ := without.FuncByName("main")
	// Without stack profiling, main's total instructions miss the callee
	// contribution from the callee_count_table.
	if mo.TotalInsts >= mw.TotalInsts {
		t.Errorf("stack profiling off should shrink totals: %d vs %d",
			mo.TotalInsts, mw.TotalInsts)
	}
}

func TestLoopThresholdPlumbsThrough(t *testing.T) {
	// A shared-header nest: T=1000 merges everything into one loop; the
	// default splits the hot nested loop.
	src := `
.func main
main:
    li s2, 100
outer:
    li s3, 50
inner:
    addi s3, s3, -1
    bnez s3, outer_share
    j after
outer_share:
    j inner
after:
    addi s2, s2, -1
    bnez s2, outer
    li a0, 0
    li a7, 93
    syscall
.endfunc
`
	p, err := Assemble("nest", src)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Profile(p, Options{SamplePeriod: 500})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Profile(p, Options{SamplePeriod: 500, LoopThreshold: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Loops) > len(def.Loops) {
		t.Errorf("huge T should merge loops: %d vs %d", len(merged.Loops), len(def.Loops))
	}
}
