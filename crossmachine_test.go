package optiwise

// The paper's tool supports both x86-64 and AArch64 (§VIII). These tests
// run the full pipeline and the case studies on the Neoverse-style machine
// as well, verifying that every conclusion is machine-portable.

import "testing"

func TestProfileOnNeoverseN1(t *testing.T) {
	prog, err := Fig1Program()
	if err != nil {
		t.Fatal(err)
	}
	// Note the paper's §V-B: the N1's early-dequeue sampling quirks are
	// observed but NOT corrected by OptiWISE, so plain skid sampling can
	// place the peak away from the culprit on this machine. With precise
	// attribution the combined CPI identifies the load on N1 too.
	prof, err := Profile(prog, Options{
		Machine: NeoverseN1(), SamplePeriod: 499, Precise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	hot, ok := prof.HottestInst()
	if !ok {
		t.Fatal("no records")
	}
	if hot.Inst.Op.String() != "ld" {
		t.Errorf("N1 hottest = %s, want the load", hot.Disasm)
	}
}

func TestMCFOptimizationPortableToN1(t *testing.T) {
	cfg := DefaultMCFConfig()
	cfg.Arcs = 1024
	cfg.ScanInvocations = 10
	base, err := MCFProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := base.Run(NeoverseN1())
	if err != nil {
		t.Fatal(err)
	}
	if bres.ExitCode != 0 {
		t.Fatalf("baseline failed verification on N1: exit %d", bres.ExitCode)
	}
	cfg.Opts = MCFOptions{BranchFree: true, StrengthReduce: true, Unroll: true}
	opt, err := MCFProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ores, err := opt.Run(NeoverseN1())
	if err != nil {
		t.Fatal(err)
	}
	if ores.ExitCode != 0 {
		t.Fatalf("optimized failed verification on N1: exit %d", ores.ExitCode)
	}
	if ores.Cycles >= bres.Cycles {
		t.Errorf("mcf optimizations did not help on N1: %d vs %d", ores.Cycles, bres.Cycles)
	}
}

func TestBwavesOptimizationPortableToN1(t *testing.T) {
	cfg := DefaultBwavesConfig()
	cfg.Sweeps = 6
	base, err := BwavesProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := base.Run(NeoverseN1())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Opts = BwavesOptions{InvertDiv: true}
	opt, err := BwavesProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ores, err := opt.Run(NeoverseN1())
	if err != nil {
		t.Fatal(err)
	}
	if ores.Cycles >= bres.Cycles {
		t.Errorf("bwaves inversion did not help on N1: %d vs %d", ores.Cycles, bres.Cycles)
	}
}

func TestArchitecturalResultsAgreeAcrossMachines(t *testing.T) {
	// Same program, same inputs: both machine models and the interpreter
	// must agree on everything architectural.
	cfg := DefaultDeepsjengConfig()
	cfg.Nodes = 200
	prog, err := DeepsjengProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	iref, err := prog.Interpret()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Machine{XeonW2195(), NeoverseN1()} {
		res, err := prog.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitCode != iref.ExitCode || res.Instructions != iref.Instructions {
			t.Errorf("%s diverged: exit %d/%d, insts %d/%d",
				m.Name, res.ExitCode, iref.ExitCode, res.Instructions, iref.Instructions)
		}
	}
}
