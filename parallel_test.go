package optiwise

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// renderAll renders every report writer into one byte stream, so two
// Results can be compared at the level users actually observe.
func renderAll(t *testing.T, prof *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, fn := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return WriteReport(b, prof) },
		func(b *bytes.Buffer) error { return WriteFunctionTable(b, prof) },
		func(b *bytes.Buffer) error { return WriteLoopTable(b, prof) },
		func(b *bytes.Buffer) error { return WriteInstCSV(b, prof) },
		func(b *bytes.Buffer) error { return WriteLoopCSV(b, prof) },
	} {
		if err := fn(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestSequentialParallelEquivalence is the determinism contract of the
// concurrent pipeline: with parallelism forced on and off, Profile must
// produce identical Results — down to every rendered report byte —
// because both passes are deterministic in isolation and the combining
// analysis merges its shards in deterministic order (DESIGN.md §7).
func TestSequentialParallelEquivalence(t *testing.T) {
	cfg := DefaultMCFConfig()
	cfg.Arcs = 256
	cfg.ScanInvocations = 2
	prog, err := MCFProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7, 42} {
		opts := Options{SamplePeriod: 1000, SampleJitter: true, RandSeed: seed}

		opts.Sequential = true
		seq, err := Profile(prog, opts)
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		opts.Sequential = false
		par, err := Profile(prog, opts)
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}

		if !reflect.DeepEqual(seq, par) {
			t.Errorf("seed %d: parallel Result differs from sequential", seed)
		}
		seqOut, parOut := renderAll(t, seq), renderAll(t, par)
		if !bytes.Equal(seqOut, parOut) {
			t.Errorf("seed %d: rendered reports differ (%d vs %d bytes)",
				seed, len(seqOut), len(parOut))
		}
	}
}

// TestParallelCancellation proves both in-flight passes stop promptly:
// ProfileContext only returns after its two pass goroutines have
// finished, so a fast error return bounds how long either pass kept
// simulating after the cancel.
func TestParallelCancellation(t *testing.T) {
	cfg := DefaultMCFConfig()
	cfg.Arcs = 4096
	cfg.ScanInvocations = 50 // long enough that both passes are mid-flight
	prog, err := MCFProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = ProfileContext(ctx, prog, Options{SamplePeriod: 1000})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Generous bound for loaded CI machines; an uncancelled run of this
	// configuration takes tens of seconds.
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; passes did not stop promptly", elapsed)
	}
}
