package optiwise

import "optiwise/internal/workloads"

// The workload re-exports give examples and downstream users access to the
// repository's benchmark programs through the public API: the 23-program
// synthetic SPEC CPU2017 stand-in, the paper's figure micro-benchmarks, and
// the three §VI case studies with their optimized variants.

// WorkloadSpec describes one synthetic suite benchmark.
type WorkloadSpec = workloads.Spec

// SuiteSpecs returns the 23-benchmark synthetic suite (figure 7).
func SuiteSpecs() []WorkloadSpec { return workloads.Suite() }

// SuiteProgram assembles one suite benchmark, scaled by f (1.0 = default
// size).
func SuiteProgram(spec WorkloadSpec, f float64) (*Program, error) {
	return Assemble(spec.Name, workloads.Generate(spec.Scale(f)))
}

// Fig1Program returns the paper's motivating example (figure 1).
func Fig1Program() (*Program, error) {
	return Assemble("fig1", workloads.Fig1())
}

// Fig2Program returns the pipeline-timeline example (figure 2).
func Fig2Program() (*Program, error) {
	return Assemble("fig2", workloads.Fig2())
}

// Fig8Program returns the x86 sample-skid micro-benchmark (figure 8).
func Fig8Program() (*Program, error) {
	return Assemble("fig8", workloads.Fig8())
}

// Fig9Program returns the N1 early-dequeue micro-benchmark (figure 9).
func Fig9Program() (*Program, error) {
	return Assemble("fig9", workloads.Fig9())
}

// MCFOptions selects the §VI-A optimizations; MCFConfig sizes the program.
type (
	MCFOptions = workloads.MCFOptions
	MCFConfig  = workloads.MCFConfig
)

// MCFProgram returns the 505.mcf case-study program.
func MCFProgram(cfg MCFConfig) (*Program, error) {
	return Assemble("505.mcf", workloads.MCF(cfg))
}

// DefaultMCFConfig mirrors the paper's proportions for §VI-A.
func DefaultMCFConfig() MCFConfig { return workloads.DefaultMCFConfig() }

// DeepsjengOptions selects the §VI-B optimizations; DeepsjengConfig sizes
// the program.
type (
	DeepsjengOptions = workloads.DeepsjengOptions
	DeepsjengConfig  = workloads.DeepsjengConfig
)

// DeepsjengProgram returns the 531.deepsjeng case-study program.
func DeepsjengProgram(cfg DeepsjengConfig) (*Program, error) {
	return Assemble("531.deepsjeng", workloads.Deepsjeng(cfg))
}

// DefaultDeepsjengConfig mirrors the paper's proportions for §VI-B.
func DefaultDeepsjengConfig() DeepsjengConfig { return workloads.DefaultDeepsjengConfig() }

// BwavesOptions selects the §VI-C optimization; BwavesConfig sizes the
// program.
type (
	BwavesOptions = workloads.BwavesOptions
	BwavesConfig  = workloads.BwavesConfig
)

// BwavesProgram returns the 603.bwaves case-study program.
func BwavesProgram(cfg BwavesConfig) (*Program, error) {
	return Assemble("603.bwaves", workloads.Bwaves(cfg))
}

// DefaultBwavesConfig mirrors the paper's proportions for §VI-C.
func DefaultBwavesConfig() BwavesConfig { return workloads.DefaultBwavesConfig() }
