package optiwise_test

import (
	"fmt"
	"log"

	"optiwise"
)

// The simplest possible use: assemble, run, read the architectural result.
func ExampleAssemble() {
	prog, err := optiwise.Assemble("demo", `
.func main
main:
    li a0, 7
    li a7, 93
    syscall
.endfunc
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(optiwise.XeonW2195())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exit:", res.ExitCode)
	fmt.Println("instructions:", res.Instructions)
	// Output:
	// exit: 7
	// instructions: 3
}

// Profile combines the sampling and instrumentation runs; the result's
// per-instruction records carry exact execution counts from the
// instrumentation run.
func ExampleProfile() {
	prog, err := optiwise.Assemble("demo", `
.func main
main:
    li t0, 1000
loop:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    syscall
.endfunc
`)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := optiwise.Profile(prog, optiwise.Options{SamplePeriod: 500, Precise: true})
	if err != nil {
		log.Fatal(err)
	}
	// The divide at offset 0x4 executes exactly 1000 times.
	r, _ := prof.InstAt(0x4)
	fmt.Println(r.Disasm, "executed", r.ExecCount, "times")
	hot, _ := prof.HottestInst()
	fmt.Println("hottest:", hot.Disasm)
	// Output:
	// div t1, t0, t0 executed 1000 times
	// hottest: div t1, t0, t0
}

// Loop analysis merges same-header back edges and reports per-loop
// iteration statistics.
func ExampleProfile_loops() {
	prog, err := optiwise.Assemble("demo", `
.func main
main:
    li s2, 20
outer:
    li s3, 30
inner:
    addi s3, s3, -1
    bnez s3, inner
    addi s2, s2, -1
    bnez s2, outer
    li a0, 0
    li a7, 93
    syscall
.endfunc
`)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := optiwise.Profile(prog, optiwise.Options{SamplePeriod: 500})
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range prof.Loops {
		fmt.Printf("loop depth %d: %d iterations over %d invocations\n",
			l.Depth, l.Iterations, l.Invocations)
	}
	// Output:
	// loop depth 0: 20 iterations over 1 invocations
	// loop depth 1: 600 iterations over 20 invocations
}
