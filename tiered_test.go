package optiwise

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"optiwise/internal/dbi"
	"optiwise/internal/report"
)

// tieredSrc is built so that tiered selection has something to decide:
// kernel carries essentially all the cycle mass (hot), while coldwork's
// div loop sits past the 16-instruction coverage floor, so its counts
// must be extrapolated. coldwork also calls coldhelper from cold code,
// exercising the cold-leg call/return bookkeeping that keeps Algorithm 1
// callee totals exact under tiering.
const tieredSrc = `
.module tiered
.text
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s1, 4
cd:
    call coldwork
    addi s1, s1, -1
    bnez s1, cd
    li s2, 400
hd:
    call kernel
    addi s2, s2, -1
    bnez s2, hd
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func kernel
kernel:
    li t0, 80
.loc tiered.c 9
kl:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, kl
    ret
.endfunc
.func coldwork
coldwork:
    addi sp, sp, -16
    st ra, 8(sp)
    addi s3, s3, 0
    addi s3, s3, 0
    addi s3, s3, 0
    addi s3, s3, 0
    addi s3, s3, 0
    addi s3, s3, 0
    addi s3, s3, 0
    addi s3, s3, 0
    addi s3, s3, 0
    addi s3, s3, 0
    addi s3, s3, 0
    addi s3, s3, 0
    addi s3, s3, 0
    addi s3, s3, 0
    li t2, 60
.loc tiered.c 24
cwl:
    div t3, t2, t2
    addi t2, t2, -1
    bnez t2, cwl
    call coldhelper
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
.endfunc
.func coldhelper
coldhelper:
    li t4, 3
chl:
    div t5, t4, t4
    addi t4, t4, -1
    bnez t4, chl
    ret
.endfunc
`

func rangesCover(rs []dbi.Range, off uint64) bool {
	for _, r := range rs {
		if off >= r.Lo && off < r.Hi {
			return true
		}
	}
	return false
}

// TestTieredProfileSemantics pins the tiered-mode accuracy contract
// (DESIGN.md §12): totals and hot-range records are exact (equal to the
// full run, not merely close), cold records carry extrapolated counts
// flagged Estimated, and the exact hot counts plus the exactly-known
// cold retirement total conserve the run's instruction count.
func TestTieredProfileSemantics(t *testing.T) {
	prog, err := Assemble("tiered", tieredSrc)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{SamplePeriod: 500, RandSeed: 1}
	full, err := Profile(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	topts := base
	topts.Tiered = true
	topts.HotThreshold = 0.05
	tiered, err := Profile(prog, topts)
	if err != nil {
		t.Fatal(err)
	}

	if full.Tiered || full.ColdInsts != 0 || len(full.HotRanges) != 0 {
		t.Fatalf("full run carries tiered fields: %+v", full.HotRanges)
	}
	if !tiered.Tiered || len(tiered.HotRanges) == 0 {
		t.Fatalf("Tiered=%v HotRanges=%v, want tiered with hot ranges",
			tiered.Tiered, tiered.HotRanges)
	}
	if tiered.ColdInsts == 0 {
		t.Fatal("ColdInsts = 0: selection instrumented everything")
	}
	if tiered.Degraded {
		t.Fatalf("tiered run degraded: %s", tiered.DegradedReason)
	}

	// Both passes are deterministic, and tiering must not perturb either
	// the sampled cycles or the exact retirement total (BaseInstructions
	// is counted in cold legs too).
	if tiered.TotalCycles != full.TotalCycles {
		t.Errorf("TotalCycles %d != full %d", tiered.TotalCycles, full.TotalCycles)
	}
	if tiered.TotalInsts != full.TotalInsts {
		t.Errorf("TotalInsts %d != full %d", tiered.TotalInsts, full.TotalInsts)
	}
	if tiered.TotalSamples != full.TotalSamples {
		t.Errorf("TotalSamples %d != full %d", tiered.TotalSamples, full.TotalSamples)
	}

	// Every record inside a hot range is exact: identical to the full
	// run's record, not just within tolerance.
	hotRecords := 0
	for _, r := range tiered.Insts {
		if !rangesCover(tiered.HotRanges, r.Offset) {
			continue
		}
		hotRecords++
		if r.Estimated {
			t.Errorf("offset %#x inside a hot range flagged Estimated", r.Offset)
		}
		fr, ok := full.InstAt(r.Offset)
		if !ok {
			t.Errorf("offset %#x has no full-run record", r.Offset)
			continue
		}
		if r.ExecCount != fr.ExecCount || r.CPI != fr.CPI {
			t.Errorf("offset %#x: tiered count=%d cpi=%g, full count=%d cpi=%g",
				r.Offset, r.ExecCount, r.CPI, fr.ExecCount, fr.CPI)
		}
	}
	if hotRecords == 0 {
		t.Fatal("no records inside hot ranges")
	}

	// Cold-code records exist, are flagged, lie outside the hot ranges,
	// and carry a nonzero extrapolated count (they were sampled, so the
	// time-share is positive).
	estimated := 0
	for _, r := range tiered.Insts {
		if !r.Estimated {
			continue
		}
		estimated++
		if rangesCover(tiered.HotRanges, r.Offset) {
			t.Errorf("estimated record %#x inside a hot range", r.Offset)
		}
		if r.Func != "coldwork" {
			t.Errorf("estimated record %#x in %q, want coldwork", r.Offset, r.Func)
		}
		if r.ExecCount == 0 {
			t.Errorf("estimated record %#x has zero extrapolated count", r.Offset)
		}
	}
	if estimated == 0 {
		t.Fatal("no Estimated records: no samples landed in cold code")
	}

	// Conservation: exact (non-estimated) counts plus the exactly-known
	// cold retirement pool account for every retired instruction.
	var exact uint64
	for _, r := range tiered.Insts {
		if !r.Estimated {
			exact += r.ExecCount
		}
	}
	if exact+tiered.ColdInsts != tiered.TotalInsts {
		t.Errorf("exact %d + cold %d != total %d",
			exact, tiered.ColdInsts, tiered.TotalInsts)
	}

	// The hot function's aggregate is exact, per the acceptance bar
	// (hot-block CPI within 5% — here it must be equal).
	tk, ok1 := tiered.FuncByName("kernel")
	fk, ok2 := full.FuncByName("kernel")
	if !ok1 || !ok2 {
		t.Fatal("kernel function record missing")
	}
	if tk.Estimated {
		t.Error("kernel FuncRecord flagged Estimated")
	}
	if tk.SelfInsts != fk.SelfInsts || tk.CPI != fk.CPI {
		t.Errorf("kernel: tiered insts=%d cpi=%g, full insts=%d cpi=%g",
			tk.SelfInsts, tk.CPI, fk.SelfInsts, fk.CPI)
	}

	// Algorithm 1 stays globally exact under tiering: cold-leg call and
	// return hooks feed the same callee bookkeeping, so main's inclusive
	// instruction total matches the full run.
	tm, ok1 := tiered.FuncByName("main")
	fm, ok2 := full.FuncByName("main")
	if !ok1 || !ok2 {
		t.Fatal("main function record missing")
	}
	if tm.TotalInsts != fm.TotalInsts {
		t.Errorf("main TotalInsts %d != full %d (callee counts diverged)",
			tm.TotalInsts, fm.TotalInsts)
	}

	// The estimate flag propagates to the function and line aggregates.
	cw, ok := tiered.FuncByName("coldwork")
	if !ok {
		t.Fatal("coldwork function record missing")
	}
	if !cw.Estimated {
		t.Error("coldwork FuncRecord not flagged Estimated")
	}
	lineFlagged := false
	for _, l := range tiered.Lines {
		if l.Estimated {
			lineFlagged = true
		}
	}
	if !lineFlagged {
		t.Error("no LineRecord flagged Estimated")
	}

	// Coverage floor: a cold function larger than the floor keeps its
	// entry instrumented, so its first instructions have exact records.
	if !rangesCover(tiered.HotRanges, cw.Lo) {
		t.Errorf("coldwork entry %#x not covered by the floor", cw.Lo)
	}
	// A tiny ret-terminated cold leaf gets no floor: blocks are atomic,
	// so a floor would swallow the ret and charge the clean-call cost
	// per entry, while its entry count is already carried by its
	// instrumented callers. With neither a floor nor any samples it may
	// be absent from the tiered profile entirely; if samples did land
	// there, its records must all be extrapolated.
	if ch, ok := tiered.FuncByName("coldhelper"); ok {
		if rangesCover(tiered.HotRanges, ch.Lo) {
			t.Errorf("coldhelper entry %#x floor-covered despite being a tiny ret-terminated leaf", ch.Lo)
		}
		if !ch.Estimated {
			t.Error("coldhelper FuncRecord present but not flagged Estimated")
		}
	}
}

// TestTieredConfidenceMarkers checks every renderer surfaces the
// extrapolation: the text report and CSV carry a tiered banner and '~'
// markers (CSV an estimated column), the YAML export the estimated
// flags — while full-run output stays free of all of them.
func TestTieredConfidenceMarkers(t *testing.T) {
	prog, err := Assemble("tiered", tieredSrc)
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := Profile(prog, Options{
		SamplePeriod: 500, RandSeed: 1, Tiered: true, HotThreshold: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Profile(prog, Options{SamplePeriod: 500, RandSeed: 1})
	if err != nil {
		t.Fatal(err)
	}

	var text bytes.Buffer
	if err := report.WriteAll(&text, tiered); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "TIERED PROFILE") {
		t.Error("text report missing tiered banner")
	}
	if !strings.Contains(text.String(), "~") {
		t.Error("text report missing '~' confidence markers")
	}

	var csv bytes.Buffer
	if err := report.WriteInstCSV(&csv, tiered); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), ",estimated\n") ||
		!strings.Contains(csv.String(), ",true\n") {
		t.Error("tiered CSV missing estimated column/values")
	}

	var yml bytes.Buffer
	if err := report.WriteYAML(&yml, tiered); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tiered: true", "hot_ranges:", "cold_instructions:", "estimated: true"} {
		if !strings.Contains(yml.String(), want) {
			t.Errorf("tiered YAML missing %q", want)
		}
	}

	// Full runs stay unmarked in every format.
	var ftext, fcsv, fyml bytes.Buffer
	if err := report.WriteAll(&ftext, full); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteInstCSV(&fcsv, full); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteYAML(&fyml, full); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ftext.String(), "TIERED") || strings.Contains(ftext.String(), "~") {
		t.Error("full text report carries tiered markers")
	}
	if strings.Contains(fcsv.String(), "estimated") {
		t.Error("full CSV carries the estimated column")
	}
	if strings.Contains(fyml.String(), "estimated") || strings.Contains(fyml.String(), "tiered: true") {
		t.Error("full YAML carries tiered fields")
	}
}

// TestTieredOptionContract pins validation and cache-identity handling
// of the tiered knobs: Tiered/HotThreshold are profile parameters and
// survive Canonical; an out-of-range threshold is rejected; the
// threshold is irrelevant (and stripped) when tiering is off.
func TestTieredOptionContract(t *testing.T) {
	if err := (Options{Tiered: true, HotThreshold: 1.5}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "hot threshold") {
		t.Errorf("HotThreshold=1.5: %v", err)
	}
	if err := (Options{Tiered: true, HotThreshold: -0.1}).Validate(); err == nil {
		t.Error("negative hot threshold accepted")
	}
	if err := (Options{Tiered: true, HotThreshold: 0.25}).Validate(); err != nil {
		t.Errorf("valid tiered options rejected: %v", err)
	}

	c := Options{Tiered: true}.Canonical()
	if !c.Tiered || c.HotThreshold != DefaultHotThreshold {
		t.Errorf("Canonical tiered = %v threshold %g, want default %g filled in",
			c.Tiered, c.HotThreshold, DefaultHotThreshold)
	}
	c = Options{HotThreshold: 0.3}.Canonical()
	if c.Tiered || c.HotThreshold != 0 {
		t.Errorf("Canonical kept HotThreshold %g without Tiered", c.HotThreshold)
	}
}

// TestTieredDegradedSamplerFailure: when the sampling pass dies there is
// no hotness information to tier on, so the degraded fallback must run
// full-coverage instrumentation — a counts-only profile with nothing
// missing from its counts.
func TestTieredDegradedSamplerFailure(t *testing.T) {
	prog, err := Assemble("tiered", tieredSrc)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Profile(prog, Options{SamplePeriod: 500, RandSeed: 1})
	if err != nil {
		t.Fatal(err)
	}

	withFault(t, "ooo.run:error:nth=1,msg=sampler killed")
	prof, err := Profile(prog, Options{
		SamplePeriod: 500, RandSeed: 1,
		Tiered: true, HotThreshold: 0.05, AllowDegraded: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Degraded || prof.FailedPass != "sampling" {
		t.Fatalf("Degraded=%v FailedPass=%q, want degraded sampling",
			prof.Degraded, prof.FailedPass)
	}
	if prof.Tiered || len(prof.HotRanges) != 0 || prof.ColdInsts != 0 {
		t.Errorf("degraded fallback still tiered: ranges=%v cold=%d",
			prof.HotRanges, prof.ColdInsts)
	}
	if prof.TotalInsts != full.TotalInsts {
		t.Errorf("counts-only TotalInsts %d != full %d: fallback lost coverage",
			prof.TotalInsts, full.TotalInsts)
	}
}

// TestTieredSelectFault covers the fault seam between the two passes:
// a selection failure is fatal without AllowDegraded, and degrades to a
// sampling-only profile with it (the sampling data is already in hand).
func TestTieredSelectFault(t *testing.T) {
	prog, err := Assemble("tiered", tieredSrc)
	if err != nil {
		t.Fatal(err)
	}

	withFault(t, "tiered.select:error:nth=1,msg=selection failed")
	if _, err := Profile(prog, Options{
		SamplePeriod: 500, RandSeed: 1, Tiered: true,
	}); err == nil || !strings.Contains(err.Error(), "tiered selection") {
		t.Fatalf("selection fault: %v, want tiered selection error", err)
	}

	withFault(t, "tiered.select:error:nth=1,msg=selection failed")
	prof, err := Profile(prog, Options{
		SamplePeriod: 500, RandSeed: 1, Tiered: true, AllowDegraded: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Degraded || prof.FailedPass != "instrumentation" {
		t.Fatalf("Degraded=%v FailedPass=%q, want sampling-only degradation",
			prof.Degraded, prof.FailedPass)
	}
	if !prof.Tiered {
		t.Error("degraded tiered run dropped the Tiered flag; the report must carry both banners")
	}
	if len(prof.HotRanges) != 0 {
		t.Errorf("no selection survived, yet HotRanges = %v", prof.HotRanges)
	}
}

// TestTieredStreamEquivalence: the streaming path must reconstruct a
// tiered run byte-identically, tiered metadata included — windowed
// edge increments carry the selection and cold-count deltas.
func TestTieredStreamEquivalence(t *testing.T) {
	prog, err := Assemble("tiered", tieredSrc)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{SamplePeriod: 500, RandSeed: 1, Tiered: true, HotThreshold: 0.05}
	oneShot, err := Profile(prog, base)
	if err != nil {
		t.Fatal(err)
	}

	opts := base
	opts.StreamWindow = 4096
	comb := NewStreamCombiner(prog, opts)
	var mu sync.Mutex
	var addErr error
	opts.OnIncrement = func(inc Increment) {
		mu.Lock()
		defer mu.Unlock()
		if err := comb.Add(inc); err != nil && addErr == nil {
			addErr = err
		}
	}
	streamed, err := Profile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if addErr != nil {
		t.Fatalf("combiner rejected an increment: %v", addErr)
	}
	if !comb.Complete() {
		t.Fatal("combiner incomplete after the run returned")
	}
	cumulative, err := comb.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !cumulative.Tiered || cumulative.ColdInsts != oneShot.ColdInsts {
		t.Errorf("cumulative tiered=%v cold=%d, one-shot cold=%d",
			cumulative.Tiered, cumulative.ColdInsts, oneShot.ColdInsts)
	}
	oneBytes := exportBytes(t, oneShot)
	if got := exportBytes(t, cumulative); !bytes.Equal(got, oneBytes) {
		t.Error("streamed cumulative export differs from one-shot tiered export")
	}
	if got := exportBytes(t, streamed); !bytes.Equal(got, oneBytes) {
		t.Error("streaming perturbed the tiered run's own profile")
	}
}
