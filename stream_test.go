package optiwise

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestStreamedCumulativeMatchesOneShot is the streaming acceptance
// criterion: feeding every windowed increment of a run into a
// StreamCombiner must reconstruct a profile byte-identical to the
// one-shot profile of the same seed — same JSON export, same report.
func TestStreamedCumulativeMatchesOneShot(t *testing.T) {
	prog, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 42} {
		base := Options{SamplePeriod: 500, RandSeed: seed}
		oneShot, err := Profile(prog, base)
		if err != nil {
			t.Fatal(err)
		}

		opts := base
		opts.StreamWindow = 4096
		comb := NewStreamCombiner(prog, opts)
		var mu sync.Mutex
		var addErr error
		var incs int
		opts.OnIncrement = func(inc Increment) {
			mu.Lock()
			defer mu.Unlock()
			incs++
			if err := comb.Add(inc); err != nil && addErr == nil {
				addErr = err
			}
		}
		streamed, err := Profile(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		if addErr != nil {
			t.Fatalf("seed %d: combiner rejected an increment: %v", seed, addErr)
		}
		if incs < 2 {
			t.Fatalf("seed %d: only %d increments (both passes emit a final)", seed, incs)
		}
		if !comb.Complete() {
			t.Fatalf("seed %d: combiner incomplete after the run returned", seed)
		}

		cumulative, err := comb.Result(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		oneBytes := exportBytes(t, oneShot)
		if got := exportBytes(t, cumulative); !bytes.Equal(got, oneBytes) {
			t.Errorf("seed %d: streamed cumulative export differs from one-shot", seed)
		}
		// The streamed run's own result must be unperturbed by window
		// emission too.
		if got := exportBytes(t, streamed); !bytes.Equal(got, oneBytes) {
			t.Errorf("seed %d: streaming perturbed the run's own profile", seed)
		}

		snap := comb.Snapshot()
		if !snap.Complete || !snap.SampleDone || !snap.EdgeDone {
			t.Errorf("seed %d: snapshot completion flags %+v", seed, snap)
		}
		// The combined profile's TotalCycles is the sampled run's user
		// cycles; the snapshot's Cycles additionally count sampling
		// interrupt overhead.
		if snap.UserCycles != oneShot.TotalCycles {
			t.Errorf("seed %d: snapshot user cycles %d, one-shot %d",
				seed, snap.UserCycles, oneShot.TotalCycles)
		}
		if snap.Cycles < snap.UserCycles {
			t.Errorf("seed %d: total cycles %d below user cycles %d",
				seed, snap.Cycles, snap.UserCycles)
		}
	}
}

func exportBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r.Export())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStreamWindowValidation pins the option contract: tiny windows are
// rejected, and Canonical strips the streaming fields so streamed and
// plain submissions share one cache identity.
func TestStreamWindowValidation(t *testing.T) {
	if err := (Options{StreamWindow: 1}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "stream window") {
		t.Errorf("StreamWindow=1: %v", err)
	}
	if err := (Options{StreamWindow: 1 << 41}).Validate(); err == nil {
		t.Error("oversized stream window accepted")
	}
	if err := (Options{StreamWindow: 4096}).Validate(); err != nil {
		t.Errorf("valid stream window rejected: %v", err)
	}
	c := Options{StreamWindow: 4096, OnIncrement: func(Increment) {}}.Canonical()
	if c.StreamWindow != 0 || c.OnIncrement != nil {
		t.Error("Canonical kept the streaming observation fields")
	}
}
