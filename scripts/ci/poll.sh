#!/usr/bin/env bash
# poll.sh — bounded poll-until-ready helper for CI smoke jobs.
#
# Usage: poll.sh [-t seconds] [-i seconds] DESCRIPTION -- CMD [ARG...]
#
# Re-runs CMD until it exits 0 (then exits 0) or the deadline passes
# (then prints DESCRIPTION and CMD's last output, and exits 1). The
# default deadline is 15s at a 0.2s interval.
#
# This replaces the fixed `for i in $(seq 1 50); do ...; sleep 0.2`
# loops the smoke jobs used to carry: those encode the deadline as an
# iteration count that silently changes meaning when the interval is
# tuned, duplicate the timeout arithmetic at every site, and lose the
# failing command's output. A wait is a deadline, not a loop count.
set -u

timeout=15
interval=0.2
while getopts "t:i:" opt; do
  case $opt in
    t) timeout=$OPTARG ;;
    i) interval=$OPTARG ;;
    *) echo "usage: poll.sh [-t seconds] [-i seconds] DESCRIPTION -- CMD [ARG...]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))
[ $# -ge 2 ] || { echo "usage: poll.sh [-t seconds] [-i seconds] DESCRIPTION -- CMD [ARG...]" >&2; exit 2; }
desc=$1
shift
[ "$1" = "--" ] && shift

deadline=$(( $(date +%s) + timeout ))
out=""
while :; do
  if out=$("$@" 2>&1); then
    exit 0
  fi
  if [ "$(date +%s)" -ge "$deadline" ]; then
    echo "poll: timed out after ${timeout}s waiting for: $desc" >&2
    [ -n "$out" ] && echo "poll: last output: $out" >&2
    exit 1
  fi
  sleep "$interval"
done
