package optiwise

import (
	"bytes"
	"testing"
)

// TestDispatchEquivalenceSuite pins the direct-threaded engine to the
// switch interpreter it replaced: for every program in the 23-workload
// suite, instrumenting under the two dispatch strategies must produce
// byte-identical serialized profiles — same counts, same edges, same
// call tables, same final architectural state. The workloads cover the
// axes that stress dispatch (indirect-branch density, call density,
// branch entropy, every opcode class), so agreement here is the
// repository's equivalence proof for the engine swap.
func TestDispatchEquivalenceSuite(t *testing.T) {
	for _, spec := range SuiteSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := SuiteProgram(spec, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			threaded, err := InstrumentOnly(prog, Options{RandSeed: 7})
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := InstrumentOnly(prog, Options{RandSeed: 7, LegacyDispatch: true})
			if err != nil {
				t.Fatal(err)
			}
			var tb, lb bytes.Buffer
			if err := threaded.Write(&tb); err != nil {
				t.Fatal(err)
			}
			if err := legacy.Write(&lb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(tb.Bytes(), lb.Bytes()) {
				t.Errorf("threaded and switch dispatch profiles differ (%d vs %d bytes)",
					tb.Len(), lb.Len())
			}
			if threaded.BaseInstructions == 0 {
				t.Error("workload retired no instructions")
			}
		})
	}
}

// TestDispatchEquivalenceFullResult extends the equivalence to the
// combined pipeline on representative workloads: the end-to-end Result
// export must be byte-identical under either dispatch strategy, and
// LegacyDispatch must not split cache identity (it is an execution
// strategy, like Sequential).
func TestDispatchEquivalenceFullResult(t *testing.T) {
	for _, name := range []string{"505.mcf", "523.xalancbmk", "519.lbm"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var spec WorkloadSpec
			for _, s := range SuiteSpecs() {
				if s.Name == name {
					spec = s
				}
			}
			if spec.Name == "" {
				t.Fatalf("workload %s not in suite", name)
			}
			prog, err := SuiteProgram(spec, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			base := Options{SamplePeriod: 500, RandSeed: 7}
			threaded, err := Profile(prog, base)
			if err != nil {
				t.Fatal(err)
			}
			lopts := base
			lopts.LegacyDispatch = true
			legacy, err := Profile(prog, lopts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(exportBytes(t, threaded), exportBytes(t, legacy)) {
				t.Error("Result exports differ between dispatch strategies")
			}
			if c := lopts.Canonical(); c.LegacyDispatch {
				t.Error("Canonical kept LegacyDispatch")
			}
		})
	}
}
