package optiwise

// Benchmarks regenerating the paper's tables and figures (one per
// experiment; see DESIGN.md §3 and EXPERIMENTS.md) plus component
// micro-benchmarks for the substrate itself.
//
// The figure benchmarks report their headline quantity as a custom metric
// (cpi, overhead-x, speedup-%), so `go test -bench=.` reproduces the
// evaluation numbers alongside timing data.

import (
	"fmt"
	"io"
	"testing"

	"optiwise/internal/dbi"
	"optiwise/internal/loops"
	"optiwise/internal/ooo"
	"optiwise/internal/program"
	"optiwise/internal/workloads"
)

func mustProgram(b *testing.B, build func() (*Program, error)) *Program {
	b.Helper()
	p, err := build()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// --- Figure 1: motivating example ---------------------------------------

func BenchmarkFig1(b *testing.B) {
	prog := mustProgram(b, Fig1Program)
	var loadCPI float64
	for i := 0; i < b.N; i++ {
		prof, err := Profile(prog, Options{SamplePeriod: 500})
		if err != nil {
			b.Fatal(err)
		}
		r, ok := prof.InstAt(workloads.Fig1LoadOffset)
		if !ok {
			b.Fatal("load record missing")
		}
		loadCPI = r.CPI
	}
	b.ReportMetric(loadCPI, "load-cpi")
}

// --- Figure 2: pipeline timeline -----------------------------------------

func BenchmarkFig2(b *testing.B) {
	prog := mustProgram(b, Fig2Program)
	var neverSampled float64
	for i := 0; i < b.N; i++ {
		img := program.Load(prog.Raw(), program.LoadOptions{})
		hist := make(map[uint64]uint64)
		sim := ooo.New(ooo.XeonW2195(), img, ooo.Options{
			SamplePeriod: 211,
			RandSeed:     7,
			OnSample: func(s ooo.Sample) {
				if off, ok := img.AbsToOff(s.PC); ok {
					hist[off]++
				}
			},
		})
		if _, err := sim.Run(0); err != nil {
			b.Fatal(err)
		}
		n := 0.0
		for off := uint64(3 * 4); off <= 10*4; off += 4 {
			if hist[off] == 0 {
				n++
			}
		}
		neverSampled = n
	}
	b.ReportMetric(neverSampled, "never-sampled-insts")
}

// --- Figure 7: tool overhead on the suite --------------------------------

func BenchmarkFig7Suite(b *testing.B) {
	for _, spec := range SuiteSpecs() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			prog, err := SuiteProgram(spec, 0.3)
			if err != nil {
				b.Fatal(err)
			}
			var total float64
			for i := 0; i < b.N; i++ {
				ov, err := MeasureOverhead(prog, Options{SamplePeriod: 2000})
				if err != nil {
					b.Fatal(err)
				}
				total = ov.TotalRatio
			}
			b.ReportMetric(total, "overhead-x")
		})
	}
}

// --- Figure 8: x86 sample skid -------------------------------------------

func BenchmarkFig8(b *testing.B) {
	prog := mustProgram(b, Fig8Program)
	var storeShare float64
	for i := 0; i < b.N; i++ {
		img := program.Load(prog.Raw(), program.LoadOptions{})
		var onStore, total uint64
		sim := ooo.New(ooo.XeonW2195(), img, ooo.Options{
			SamplePeriod: 211,
			RandSeed:     7,
			OnSample: func(s ooo.Sample) {
				total++
				if off, ok := img.AbsToOff(s.PC); ok && off == workloads.Fig8StoreOffset {
					onStore++
				}
			},
		})
		if _, err := sim.Run(0); err != nil {
			b.Fatal(err)
		}
		storeShare = float64(onStore) / float64(total)
	}
	// Low = reproduced: the expensive store is NOT where samples land.
	b.ReportMetric(100*storeShare, "store-sample-%")
}

// --- Figure 9: N1 early dequeue ------------------------------------------

func BenchmarkFig9(b *testing.B) {
	prog := mustProgram(b, Fig9Program)
	var peak float64
	for i := 0; i < b.N; i++ {
		img := program.Load(prog.Raw(), program.LoadOptions{})
		hist := make(map[uint64]uint64)
		sim := ooo.New(ooo.NeoverseN1(), img, ooo.Options{
			SamplePeriod: 397,
			RandSeed:     7,
			OnSample: func(s ooo.Sample) {
				if off, ok := img.AbsToOff(s.PC); ok {
					hist[off]++
				}
			},
		})
		if _, err := sim.Run(0); err != nil {
			b.Fatal(err)
		}
		var bestOff uint64
		var best uint64
		for off, n := range hist {
			if n > best {
				best, bestOff = n, off
			}
		}
		peak = float64(int64(bestOff-workloads.Fig9DivOffset) / 4)
	}
	b.ReportMetric(peak, "displacement-insts")
}

// --- Figure 10: annotated cost_compare -----------------------------------

func BenchmarkFig10(b *testing.B) {
	cfg := DefaultMCFConfig()
	cfg.Arcs = 1024
	cfg.ScanInvocations = 5
	prog := mustProgram(b, func() (*Program, error) { return MCFProgram(cfg) })
	for i := 0; i < b.N; i++ {
		prof, err := Profile(prog, Options{SamplePeriod: 1000})
		if err != nil {
			b.Fatal(err)
		}
		if err := WriteAnnotated(io.Discard, prof, "cost_compare"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table I: loop merging ------------------------------------------------

// BenchmarkTable1 regenerates Table I end to end: the full OptiWISE
// pipeline (sampling run, instrumentation run, combining analysis with
// Algorithm 2 loop merging) on the mcf case-study program, reporting the
// merged program-loop count. This is the repository's headline
// end-to-end profiling benchmark — the CI bench gate pins it — so it
// exercises every stage a real `optiwise profile` invocation does.
func BenchmarkTable1(b *testing.B) {
	cfg := DefaultMCFConfig()
	cfg.Arcs = 1024
	cfg.ScanInvocations = 5
	prog := mustProgram(b, func() (*Program, error) { return MCFProgram(cfg) })
	var nLoops float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof, err := Profile(prog, Options{SamplePeriod: 1000})
		if err != nil {
			b.Fatal(err)
		}
		nLoops = float64(len(prof.Loops))
	}
	b.ReportMetric(nLoops, "program-loops")
}

// BenchmarkLoopMerge is the former Table I micro-benchmark: Algorithm 2
// alone on the paper's figure 6 CFG (no profiling runs).
func BenchmarkLoopMerge(b *testing.B) {
	g := fig6Graph()
	var nLoops float64
	for i := 0; i < b.N; i++ {
		merged := loops.Merge(loops.Find(g), loops.DefaultThreshold)
		nLoops = float64(len(merged))
	}
	b.ReportMetric(nLoops, "program-loops")
}

// fig6Graph duplicates the paper's figure 6 CFG for the bench harness.
type benchGraph struct {
	succs [][]int
	freq  map[[2]int]uint64
}

func (g *benchGraph) NumNodes() int     { return len(g.succs) }
func (g *benchGraph) Succs(n int) []int { return g.succs[n] }
func (g *benchGraph) EdgeFreq(from, to int) uint64 {
	return g.freq[[2]int{from, to}]
}

func fig6Graph() *benchGraph {
	g := &benchGraph{succs: make([][]int, 8), freq: make(map[[2]int]uint64)}
	edge := func(from, to int, f uint64) {
		g.succs[from] = append(g.succs[from], to)
		g.freq[[2]int{from, to}] = f
	}
	edge(0, 1, 1)
	edge(1, 5, 2373)
	edge(1, 7, 1)
	edge(5, 1, 2000)
	edge(5, 6, 373)
	edge(6, 1, 300)
	edge(6, 2, 73)
	edge(2, 1, 50)
	edge(2, 3, 10)
	edge(2, 4, 12)
	edge(3, 1, 10)
	edge(4, 1, 12)
	return g
}

// --- Case studies ----------------------------------------------------------

func speedupBench[C any](b *testing.B, build func(C) (*Program, error), base, opt C) {
	b.Helper()
	var speedup float64
	for i := 0; i < b.N; i++ {
		bp, err := build(base)
		if err != nil {
			b.Fatal(err)
		}
		bres, err := bp.Run(XeonW2195())
		if err != nil {
			b.Fatal(err)
		}
		op, err := build(opt)
		if err != nil {
			b.Fatal(err)
		}
		ores, err := op.Run(XeonW2195())
		if err != nil {
			b.Fatal(err)
		}
		speedup = 100 * (float64(bres.Cycles)/float64(ores.Cycles) - 1)
	}
	b.ReportMetric(speedup, "speedup-%")
}

func BenchmarkCaseMCF(b *testing.B) {
	base := DefaultMCFConfig()
	base.Arcs = 2048
	base.ScanInvocations = 20
	opt := base
	opt.Opts = MCFOptions{BranchFree: true, StrengthReduce: true, Unroll: true}
	speedupBench(b, MCFProgram, base, opt)
}

func BenchmarkCaseDeepsjeng(b *testing.B) {
	base := DefaultDeepsjengConfig()
	base.Nodes = 800
	opt := base
	opt.Opts = DeepsjengOptions{Prefetch: true, RemoveDiv: true}
	speedupBench(b, DeepsjengProgram, base, opt)
}

func BenchmarkCaseBwaves(b *testing.B) {
	base := DefaultBwavesConfig()
	base.Sweeps = 8
	opt := base
	opt.Opts = BwavesOptions{InvertDiv: true}
	speedupBench(b, BwavesProgram, base, opt)
}

// --- Ablations --------------------------------------------------------------

func BenchmarkAblateAttribution(b *testing.B) {
	prog := mustProgram(b, Fig1Program)
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"none", Options{Attribution: AttrNone, SamplePeriod: 500}},
		{"predecessor", Options{Attribution: AttrPredecessor, SamplePeriod: 500}},
		{"precise", Options{Precise: true, SamplePeriod: 500}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				prof, err := Profile(prog, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				r, _ := prof.InstAt(workloads.Fig1LoadOffset)
				frac = 100 * float64(r.Cycles) / float64(prof.TotalCycles)
			}
			b.ReportMetric(frac, "load-cycle-%")
		})
	}
}

func BenchmarkAblateThreshold(b *testing.B) {
	g := fig6Graph()
	for _, t := range []uint64{1, 3, 10, 100} {
		t := t
		b.Run(fmt.Sprintf("T=%d", t), func(b *testing.B) {
			var n float64
			for i := 0; i < b.N; i++ {
				n = float64(len(loops.Merge(loops.Find(g), t)))
			}
			b.ReportMetric(n, "program-loops")
		})
	}
}

func BenchmarkAblateCleanCall(b *testing.B) {
	s, ok := workloads.SpecByName("523.xalancbmk")
	if !ok {
		b.Fatal("spec missing")
	}
	prog := mustProgram(b, func() (*Program, error) { return Assemble(s.Name, workloads.Generate(s.Scale(0.15))) })
	for _, cost := range []uint64{900, 90} {
		cost := cost
		b.Run(fmt.Sprintf("cleancall=%d", cost), func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				costs := dbi.DefaultCosts()
				costs.CleanCall = cost
				prof, err := dbi.Run(prog.Raw(), dbi.Options{
					StackProfiling: true, Costs: &costs, RandSeed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				overhead = prof.Overhead()
			}
			b.ReportMetric(overhead, "overhead-x")
		})
	}
}

func BenchmarkAblatePredictor(b *testing.B) {
	cfg := DefaultMCFConfig()
	cfg.Arcs = 1024
	cfg.ScanInvocations = 5
	prog := mustProgram(b, func() (*Program, error) { return MCFProgram(cfg) })
	for _, bimodal := range []bool{false, true} {
		bimodal := bimodal
		name := "gshare"
		if bimodal {
			name = "bimodal"
		}
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				m := ooo.XeonW2195()
				m.UseBimodal = bimodal
				sim := ooo.New(m, program.Load(prog.Raw(), program.LoadOptions{}),
					ooo.Options{RandSeed: 7})
				st, err := sim.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				rate = 100 * float64(st.Mispredicts) / float64(st.Branches)
			}
			b.ReportMetric(rate, "mispredict-%")
		})
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

func BenchmarkAssemble(b *testing.B) {
	src := workloads.Generate(workloads.Spec{
		Name: "bench", Lang: "C", BodyOps: 50, Iterations: 10,
		ALU: 5, Load: 2, Store: 1, WorkingSetKB: 64,
	})
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreter(b *testing.B) {
	prog := mustProgram(b, Fig2Program)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := prog.Interpret()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Instructions)) // instructions per "byte"
	}
}

func BenchmarkPipelineSim(b *testing.B) {
	prog := mustProgram(b, Fig2Program)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(XeonW2195()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBIEngine(b *testing.B) {
	prog := mustProgram(b, Fig2Program)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InstrumentOnly(prog, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampler(b *testing.B) {
	prog := mustProgram(b, Fig2Program)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SampleOnly(prog, Options{SamplePeriod: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombine(b *testing.B) {
	prog := mustProgram(b, Fig1Program)
	opts := Options{SamplePeriod: 500}
	sp, _, err := SampleOnly(prog, opts)
	if err != nil {
		b.Fatal(err)
	}
	ep, err := InstrumentOnly(prog, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(prog, sp, ep, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Streaming windowed profiling ----------------------------------------

// BenchmarkStreamOff prices the streaming-disabled pipeline: with
// StreamWindow zero, the sampling run loop pays one nil compare per
// cycle and the DBI run loop one per block. The benchgate's pinned set
// (Fig1/Table1/CaseMCF) runs this same disabled path, so any cost
// beyond a predictable branch shows up as a gated regression there.
func BenchmarkStreamOff(b *testing.B) {
	prog := mustProgram(b, Fig2Program)
	opts := Options{SamplePeriod: 2000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Profile(prog, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamOn prices enabled streaming end to end: window
// slicing, increment hand-off, and the incremental combine. Compare
// with BenchmarkStreamOff for the marginal cost per emitted window.
func BenchmarkStreamOn(b *testing.B) {
	prog := mustProgram(b, Fig2Program)
	var windows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := Options{SamplePeriod: 2000, StreamWindow: 4096}
		comb := NewStreamCombiner(prog, opts)
		opts.OnIncrement = func(inc Increment) {
			if err := comb.Add(inc); err != nil {
				b.Error(err)
			}
		}
		if _, err := Profile(prog, opts); err != nil {
			b.Fatal(err)
		}
		snap := comb.Snapshot()
		windows = len(snap.SampleWindows) + len(snap.EdgeWindows)
	}
	b.ReportMetric(float64(windows), "windows")
}

// --- Tiered profiling and dispatch engine ---------------------------------

// suiteProgram assembles one named workload from the 23-benchmark suite
// at the given scale.
func suiteProgram(b *testing.B, name string, f float64) *Program {
	b.Helper()
	for _, spec := range SuiteSpecs() {
		if spec.Name == name {
			return mustProgram(b, func() (*Program, error) { return SuiteProgram(spec, f) })
		}
	}
	b.Fatalf("workload %q not in suite", name)
	return nil
}

// BenchmarkInterpDispatch pins the execution-engine speedup: the same
// instrumentation pass over 525.x264 on the direct-threaded engine
// (default) and on the legacy switch interpreter. The two arms produce
// byte-identical Results (dispatch_test.go); this benchmark is the gate
// that keeps the threaded engine actually paying for its complexity.
func BenchmarkInterpDispatch(b *testing.B) {
	prog := suiteProgram(b, "525.x264", 0.25)
	for _, arm := range []struct {
		name   string
		legacy bool
	}{{"threaded", false}, {"switch", true}} {
		b.Run(arm.name, func(b *testing.B) {
			var insts uint64
			for i := 0; i < b.N; i++ {
				ep, err := InstrumentOnly(prog, Options{RandSeed: 7, LegacyDispatch: arm.legacy})
				if err != nil {
					b.Fatal(err)
				}
				insts = ep.BaseInstructions
			}
			b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
		})
	}
}

// BenchmarkTieredPipeline prices the two-pass pipeline full vs tiered
// on the same workload. Both arms run the passes sequentially so the
// comparison is sum-of-passes vs sum-of-passes; the tiered arm reports
// the cold fraction it extrapolated instead of instrumenting. The
// instrumentation-side saving is measured precisely by `owbench tiered`
// (README "Tiered profiling"); this benchmark pins the end-to-end cost
// so tier selection itself can never quietly become a regression.
func BenchmarkTieredPipeline(b *testing.B) {
	prog := suiteProgram(b, "525.x264", 0.25)
	for _, arm := range []struct {
		name string
		opts Options
	}{
		{"full", Options{SamplePeriod: 2000, RandSeed: 7, Sequential: true}},
		{"tiered", Options{SamplePeriod: 2000, RandSeed: 7, Sequential: true, Tiered: true}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var coldPct float64
			for i := 0; i < b.N; i++ {
				prof, err := Profile(prog, arm.opts)
				if err != nil {
					b.Fatal(err)
				}
				if prof.Tiered {
					coldPct = 100 * float64(prof.ColdInsts) / float64(prof.TotalInsts)
				}
			}
			if coldPct > 0 {
				b.ReportMetric(coldPct, "cold-insts-%")
			}
		})
	}
}
