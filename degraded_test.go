package optiwise

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"optiwise/internal/fault"
	"optiwise/internal/report"
)

// withFault installs a fault plan for the test and guarantees the
// process-global registry is clean afterwards. Degraded-mode tests
// must not run in parallel (the registry is global).
func withFault(t *testing.T, spec string) {
	t.Helper()
	if err := fault.Activate(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fault.Set(nil) })
}

// TestDegradedSamplingOnly kills the DBI pass and checks the
// AllowDegraded contract: a flagged sampling-only result whose
// hot-function ranking matches the full run's sample ranking, with
// every renderer carrying the degraded banner.
func TestDegradedSamplingOnly(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Profile(p, Options{SamplePeriod: 500})
	if err != nil {
		t.Fatal(err)
	}

	withFault(t, "dbi.run:error:nth=1,msg=dbi pass killed")
	prof, err := Profile(p, Options{SamplePeriod: 500, AllowDegraded: true})
	if err != nil {
		t.Fatalf("degraded profile: %v", err)
	}
	if !prof.Degraded || prof.FailedPass != "instrumentation" {
		t.Fatalf("Degraded=%v FailedPass=%q, want degraded instrumentation",
			prof.Degraded, prof.FailedPass)
	}
	if !strings.Contains(prof.DegradedReason, "dbi pass killed") {
		t.Errorf("DegradedReason = %q, want the injected message", prof.DegradedReason)
	}
	if prof.TotalCycles == 0 || prof.TotalSamples == 0 {
		t.Errorf("sampling-only result lost its cycles: %+v", prof)
	}

	// Hot-function ranking is by stack-credited cycles, which depend
	// only on the sampling pass — so the degraded ranking must match
	// the full run's exactly.
	if len(prof.Funcs) != len(full.Funcs) {
		t.Fatalf("func count %d vs full %d", len(prof.Funcs), len(full.Funcs))
	}
	for i := range prof.Funcs {
		if prof.Funcs[i].Name != full.Funcs[i].Name {
			t.Errorf("rank %d: %s vs full %s", i, prof.Funcs[i].Name, full.Funcs[i].Name)
		}
		if prof.Funcs[i].TotalCycles != full.Funcs[i].TotalCycles {
			t.Errorf("%s: TotalCycles %d vs full %d", prof.Funcs[i].Name,
				prof.Funcs[i].TotalCycles, full.Funcs[i].TotalCycles)
		}
	}

	// Instruction totals are time-share estimates: they must sum to
	// roughly the sampled run's retired instructions and give every
	// function the program-wide CPI.
	if prof.TotalInsts == 0 {
		t.Error("sampling-only result should estimate TotalInsts from the sampling run")
	}

	// Every renderer flags the degradation.
	hot := prof.Funcs[0].Name
	renderers := map[string]func(*bytes.Buffer) error{
		"summary":   func(b *bytes.Buffer) error { return report.WriteSummary(b, prof) },
		"functions": func(b *bytes.Buffer) error { return report.WriteFunctionTable(b, prof) },
		"loops":     func(b *bytes.Buffer) error { return report.WriteLoopTable(b, prof) },
		"annotated": func(b *bytes.Buffer) error { return report.WriteAnnotatedFunc(b, prof, hot) },
		"callgraph": func(b *bytes.Buffer) error { return report.WriteCallGraph(b, prof) },
		"csv":       func(b *bytes.Buffer) error { return report.WriteInstCSV(b, prof) },
		"loops-csv": func(b *bytes.Buffer) error { return report.WriteLoopCSV(b, prof) },
		"all":       func(b *bytes.Buffer) error { return report.WriteAll(b, prof) },
	}
	for name, render := range renderers {
		var b bytes.Buffer
		if err := render(&b); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !strings.Contains(b.String(), "DEGRADED RESULT") {
			t.Errorf("%s output not marked degraded:\n%.200s", name, b.String())
		}
	}
	// The banner must appear exactly once in the full report.
	var all bytes.Buffer
	if err := report.WriteAll(&all, prof); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(all.String(), "DEGRADED RESULT"); n != 1 {
		t.Errorf("WriteAll banner count = %d, want 1", n)
	}
	// JSON export carries the flag.
	var js bytes.Buffer
	if err := prof.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"degraded":true`) {
		t.Error("JSON export missing degraded flag")
	}
	// The CFG comes from the dead instrumentation pass; asking for it
	// must fail descriptively, not render an empty graph.
	var dot bytes.Buffer
	if err := WriteCFGDot(&dot, prof, hot); err == nil {
		t.Error("WriteCFGDot on sampling-only result should fail")
	}
}

// TestDegradedCountsOnly kills the sampling pass: exact counts survive,
// cycles vanish, and functions re-rank by retired instructions.
func TestDegradedCountsOnly(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	withFault(t, "ooo.run:error:nth=1,msg=sampler killed")
	prof, err := Profile(p, Options{SamplePeriod: 500, AllowDegraded: true})
	if err != nil {
		t.Fatalf("counts-only profile: %v", err)
	}
	if !prof.Degraded || prof.FailedPass != "sampling" {
		t.Fatalf("Degraded=%v FailedPass=%q, want degraded sampling", prof.Degraded, prof.FailedPass)
	}
	if prof.TotalCycles != 0 || prof.TotalSamples != 0 {
		t.Errorf("counts-only result has cycles=%d samples=%d, want 0", prof.TotalCycles, prof.TotalSamples)
	}
	if prof.TotalInsts == 0 {
		t.Error("counts-only result lost its execution counts")
	}
	for i := 1; i < len(prof.Funcs); i++ {
		if prof.Funcs[i-1].TotalInsts < prof.Funcs[i].TotalInsts {
			t.Errorf("funcs not ranked by TotalInsts: %s(%d) before %s(%d)",
				prof.Funcs[i-1].Name, prof.Funcs[i-1].TotalInsts,
				prof.Funcs[i].Name, prof.Funcs[i].TotalInsts)
		}
	}
	if len(prof.Loops) == 0 {
		t.Error("counts-only result should keep merged loops (CFG survives)")
	}
}

// TestDegradedNotWithoutOptIn: without AllowDegraded a failing pass
// still fails the whole run.
func TestDegradedNotWithoutOptIn(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	withFault(t, "dbi.run:error:nth=1")
	if _, err := Profile(p, Options{SamplePeriod: 500}); err == nil {
		t.Fatal("expected the injected fault to fail the run")
	} else if !fault.IsTransient(err) {
		t.Errorf("expected a transient injected fault, got %v", err)
	}
}

// TestDegradedBothPassesFail: nothing survives to degrade to.
func TestDegradedBothPassesFail(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	withFault(t, "dbi.run:error:nth=1;ooo.run:error:nth=1")
	if _, err := Profile(p, Options{SamplePeriod: 500, AllowDegraded: true}); err == nil {
		t.Fatal("expected failure when both passes die")
	}
}

// TestPassPanicRecovered: an injected panic inside a pass becomes a
// *PanicError instead of crashing the process, and with AllowDegraded
// the sibling still yields a partial result.
func TestPassPanicRecovered(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	withFault(t, "dbi.run:panic:nth=1,msg=boom")
	_, err = Profile(p, Options{SamplePeriod: 500})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Op != "instrumentation" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {Op:%q stack:%d bytes}", pe.Op, len(pe.Stack))
	}

	// Reinstall: the nth=1 trigger already consumed its fire above
	// (rule counters live in the installed plan).
	withFault(t, "dbi.run:panic:nth=1,msg=boom")
	prof, err := Profile(p, Options{SamplePeriod: 500, AllowDegraded: true})
	if err != nil {
		t.Fatalf("degraded after panic: %v", err)
	}
	if !prof.Degraded || prof.FailedPass != "instrumentation" {
		t.Errorf("Degraded=%v FailedPass=%q", prof.Degraded, prof.FailedPass)
	}
}

// TestDegradedRespectsCancellation: a canceled context must surface
// the cancellation, never a degraded result.
func TestDegradedRespectsCancellation(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ProfileContext(ctx, p, Options{AllowDegraded: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestFaultSpecOption: Options.FaultSpec validates and installs the
// plan for the run; a bogus spec is a validation error.
func TestFaultSpecOption(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := (Options{FaultSpec: "nope"}).Validate(); err == nil {
		t.Error("bogus FaultSpec should fail Validate")
	}
	t.Cleanup(func() { fault.Set(nil) })
	prof, err := Profile(p, Options{
		SamplePeriod:  500,
		AllowDegraded: true,
		FaultSpec:     "dbi.run:error:nth=1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Degraded {
		t.Error("FaultSpec plan did not take effect")
	}
	// Canonical clears FaultSpec but keeps AllowDegraded.
	c := Options{FaultSpec: "dbi.run:error:nth=1", AllowDegraded: true, Sequential: true}.Canonical()
	if c.FaultSpec != "" || c.Sequential {
		t.Errorf("Canonical kept FaultSpec=%q Sequential=%v", c.FaultSpec, c.Sequential)
	}
	if !c.AllowDegraded {
		t.Error("Canonical dropped AllowDegraded")
	}
}

// TestSequentialDegraded: the sequential path also degrades — the
// instrumentation pass still runs after a sampling failure.
func TestSequentialDegraded(t *testing.T) {
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	withFault(t, "ooo.run:error:nth=1")
	prof, err := Profile(p, Options{SamplePeriod: 500, AllowDegraded: true, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Degraded || prof.FailedPass != "sampling" {
		t.Errorf("sequential degraded: Degraded=%v FailedPass=%q", prof.Degraded, prof.FailedPass)
	}
}
