module optiwise

go 1.22
