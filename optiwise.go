// Package optiwise is a from-scratch reproduction of "OptiWISE: Combining
// Sampling and Instrumentation for Granular CPI Analysis" (CGO 2024).
//
// OptiWISE profiles a program twice — once with low-overhead periodic
// sampling that measures real performance, and once with dynamic binary
// instrumentation that captures exact control flow and execution counts —
// and combines the two into a per-instruction CPI metric, aggregated to
// basic blocks, merged loops, source lines, and functions.
//
// Because the original runs on x86-64/AArch64 hardware under Linux perf and
// DynamoRIO, this reproduction ships its entire substrate: the OWISA toy
// ISA and assembler, a cycle-level out-of-order superscalar simulator with
// ROB-head sampling semantics (the "hardware"), a perf-like sampler, and a
// DynamoRIO-like instrumentation engine. See DESIGN.md for the inventory.
//
// # Quick start
//
//	prog, err := optiwise.Assemble("demo", source)
//	...
//	prof, err := optiwise.Profile(prog, optiwise.Options{})
//	...
//	optiwise.WriteReport(os.Stdout, prof)
package optiwise

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"optiwise/internal/asm"
	"optiwise/internal/core"
	"optiwise/internal/dbi"
	"optiwise/internal/fault"
	"optiwise/internal/interp"
	"optiwise/internal/obs"
	"optiwise/internal/ooo"
	"optiwise/internal/program"
	"optiwise/internal/report"
	"optiwise/internal/sampler"
	"optiwise/internal/stream"
)

// Machine describes the simulated processor a program is profiled on.
type Machine = ooo.Config

// XeonW2195 returns the paper's x86-style evaluation machine: 4-wide
// out-of-order, large ROB, skid-prone sampling at the reorder-buffer head.
func XeonW2195() Machine { return ooo.XeonW2195() }

// NeoverseN1 returns the paper's AArch64-style machine with the
// early-dequeue commit model of §V-B.
func NeoverseN1() Machine { return ooo.NeoverseN1() }

// MachineByName resolves a machine identifier as used by the CLI and the
// profiling service. The empty string selects the default (XeonW2195);
// unknown names produce a descriptive error listing the alternatives.
func MachineByName(name string) (Machine, error) {
	switch name {
	case "", "xeon", "xeon-w2195":
		return XeonW2195(), nil
	case "n1", "neoverse-n1":
		return NeoverseN1(), nil
	}
	return Machine{}, fmt.Errorf("unknown machine %q (available: xeon, xeon-w2195, n1, neoverse-n1)", name)
}

// Program is an assembled OWISA module ready to run or profile.
type Program struct {
	prog *program.Program
}

// Assemble builds a Program from OWISA assembly source. The module name
// keys all profile data (see internal/asm for the syntax).
func Assemble(module, source string) (*Program, error) {
	p, err := asm.Assemble(module, source)
	if err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// Module returns the program's module identifier.
func (p *Program) Module() string { return p.prog.Module }

// WriteBinary serializes the assembled program as an OWX image — the
// repository's ELF stand-in, consumable by the optiwise CLI without
// re-assembly.
func (p *Program) WriteBinary(w io.Writer) error { return p.prog.WriteOWX(w) }

// ReadBinary loads a program from an OWX image written by WriteBinary.
func ReadBinary(r io.Reader) (*Program, error) {
	raw, err := program.ReadOWX(r)
	if err != nil {
		return nil, err
	}
	return &Program{prog: raw}, nil
}

// Raw exposes the underlying program image for advanced use (report
// annotation, custom analyses).
func (p *Program) Raw() *program.Program { return p.prog }

// RunResult describes one native (uninstrumented, unsampled) execution.
type RunResult struct {
	// Cycles is the simulated execution time.
	Cycles uint64
	// Instructions retired.
	Instructions uint64
	// IPC is Instructions/Cycles.
	IPC float64
	// ExitCode is the program's exit status; Output its stdout+stderr.
	ExitCode int64
	Output   []byte
	// Mispredicts and Branches describe control-flow behaviour.
	Mispredicts uint64
	Branches    uint64
}

// Run executes the program natively on machine m — the baseline the
// paper's figure 7 overheads are measured against.
func (p *Program) Run(m Machine) (RunResult, error) {
	img := program.Load(p.prog, program.LoadOptions{})
	sim := ooo.New(m, img, ooo.Options{RandSeed: 7})
	st, err := sim.Run(0)
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Cycles:       st.Cycles,
		Instructions: st.Instructions,
		IPC:          st.IPC(),
		ExitCode:     sim.Arch().ExitCode,
		Output:       sim.Arch().Output,
		Mispredicts:  st.Mispredicts,
		Branches:     st.Branches,
	}, nil
}

// Interpret executes the program on the functional interpreter (no
// timing) — the native baseline of the instrumentation overhead model.
func (p *Program) Interpret() (RunResult, error) {
	m := interp.New(program.Load(p.prog, program.LoadOptions{}), 7)
	if err := m.Run(0); err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Instructions: m.Steps,
		ExitCode:     m.ExitCode,
		Output:       m.Output,
	}, nil
}

// Attribution selects how samples map back to instructions; see §III and
// §V-B of the paper.
type Attribution = core.Attribution

// Attribution modes.
const (
	AttrAuto        = core.AttrAuto
	AttrNone        = core.AttrNone
	AttrPredecessor = core.AttrPredecessor
)

// Options configures a full OptiWISE profiling run (both executions plus
// analysis). The zero value is a sensible default.
type Options struct {
	// Machine is the simulated processor; zero value means XeonW2195.
	Machine Machine
	// SamplePeriod is the sampling period in user cycles (default 2000).
	SamplePeriod uint64
	// InterruptCost is kernel cycles per sample (default
	// sampler.DefaultInterruptCost).
	InterruptCost uint64
	// Precise selects PEBS-style precise sample attribution.
	Precise bool
	// SampleJitter varies the sampling period (±25%), modelling the
	// interrupt-timing noise the per-sample weights correct (§IV-B).
	SampleJitter bool
	// StackProfiling enables the Algorithm 1 instrumentation (§IV-D);
	// without it, loop and function totals lack callee attribution.
	// Default on (matching the tool's default).
	DisableStackProfiling bool
	// Attribution overrides the sample re-attribution mode.
	Attribution Attribution
	// Unweighted ignores per-sample cycle weights (ablation).
	Unweighted bool
	// LoopThreshold is Algorithm 2's T (default 3).
	LoopThreshold uint64
	// SampleASLRSeed / InstrASLRSeed randomize each run's load base;
	// distinct bases exercise the module-relative aggregation of §IV-A.
	SampleASLRSeed int64
	InstrASLRSeed  int64
	// RandSeed seeds the profiled program's deterministic SysRand.
	RandSeed uint64
	// MaxCycles bounds each profiled execution: simulated cycles for the
	// sampling run and retired instructions for the instrumentation run
	// (a deliberately loose shared bound). 0 means unlimited. Long-lived
	// callers (the profiling service) set it so a runaway program cannot
	// pin a worker forever.
	MaxCycles uint64
	// Sequential forces Profile to run the sampling and instrumentation
	// passes back to back on the calling goroutine instead of
	// concurrently. The two passes are independent executions of the
	// same program (§IV), so the combined Result is byte-identical
	// either way; Sequential exists for debugging, single-core hosts,
	// and the equivalence tests that prove that determinism claim.
	Sequential bool
	// LegacyDispatch forces the instrumentation pass's block bodies
	// through the per-instruction switch interpreter instead of the
	// direct-threaded engine. The two dispatch strategies retire the
	// same architectural state and counts — the equivalence suite pins
	// byte-identical Results across all 23 workloads — so, like
	// Sequential, this is an execution strategy, not a profile
	// parameter: Canonical clears it and it never splits cache
	// identity. It exists for debugging and as the baseline arm of the
	// dispatch benchmarks. Ignored (the threaded engine is required) in
	// tiered mode.
	LegacyDispatch bool
	// TelemetryWindow, when non-zero, collects cycle-windowed interval
	// telemetry from the sampled run's simulated core: one record of
	// IPC, ROB occupancy, branch-mispredict rate, per-level cache miss
	// rate, and stall-cause breakdown per this many cycles. The stream
	// rides on the Result (Result.Intervals), is rendered as a phase
	// summary in the text report, and exports as Chrome-trace counter
	// tracks. Zero (the default) disables collection entirely; the
	// simulator then pays one nil compare per cycle.
	TelemetryWindow uint64
	// StreamWindow, when non-zero (with OnIncrement), enables streaming
	// windowed profiling: each pass emits a profile increment per
	// window — every StreamWindow simulated cycles for the sampling run
	// and every StreamWindow retired instructions for the
	// instrumentation run (the same loose cycle/instruction equivalence
	// as MaxCycles) — plus a final increment per pass when it exits.
	// Feed the increments to a StreamCombiner to maintain cumulative
	// results while the run is still executing; after both finals the
	// combined result is byte-identical to the one-shot profile. Zero
	// disables streaming entirely; the run loops then pay one nil
	// compare per cycle (sampling) / per block (instrumentation).
	StreamWindow uint64
	// OnIncrement receives every increment, synchronously on the
	// emitting pass's goroutine. With concurrent passes it is called
	// from two goroutines; StreamCombiner.Add is safe for that.
	OnIncrement func(stream.Increment)
	// Tiered enables tiered adaptive instrumentation (DESIGN.md §12):
	// the sampling pass runs first, its cycle attribution selects which
	// code regions earn full instrumentation (HotThreshold over aligned
	// sub-function windows, plus a coverage floor of entry instructions
	// per function — except tiny ret-terminated leaves, which are left
	// to their callers' edge records), and the DBI pass instruments only that
	// selection — cold code runs
	// through the threaded engine's cold path at near-native modelled
	// cost. The Result carries exact cycles everywhere and exact counts
	// for hot code; cold-code counts are extrapolated from sampling
	// time-shares and flagged Estimated. Tiered runs are inherently
	// sequential (the DBI pass consumes the sampling pass's output), so
	// the pass-overlap schedule does not apply. Tiered is a profile
	// parameter: it changes what is measured, so it is part of cache
	// identity (unlike Sequential). Applies to Profile/ProfileContext;
	// InstrumentOnly ignores it (there is no sampling profile to derive
	// a selection from).
	Tiered bool
	// HotThreshold is the tiered-mode hotness cutoff: an aligned
	// region of core.RegionInsts instructions whose sampled cycle share
	// is at least this fraction of total cycle mass is instrumented.
	// 0 means DefaultHotThreshold; values must lie in (0, 1]. Ignored
	// unless Tiered is set.
	HotThreshold float64
	// AllowDegraded opts into partial results: when exactly one of the
	// two profiling passes fails (for a reason other than the caller's
	// own cancellation), ProfileContext returns a Result with Degraded
	// set instead of an error — sampling-only (cycles without execution
	// counts; time-share CPI estimates) when instrumentation failed, or
	// counts-only (execution counts without cycles) when sampling
	// failed. Degraded results are never admitted to the service's
	// result cache. See DESIGN.md §8.
	AllowDegraded bool
	// FaultSpec installs a deterministic fault-injection plan
	// (internal/fault spec grammar) for this run, for chaos testing and
	// failure-drill tooling. It is an execution harness, not a profile
	// parameter: Canonical clears it, the profiling service never
	// accepts one remotely, and a spec differing from an already-active
	// global plan is an error rather than a silent replacement.
	FaultSpec string
}

// DefaultHotThreshold is the tiered-mode hotness cutoff applied when
// Options.HotThreshold is zero: code regions carrying at least 1% of
// the sampled cycle mass are instrumented.
const DefaultHotThreshold = 0.01

func (o *Options) fill() {
	if o.Machine.Name == "" {
		o.Machine = XeonW2195()
	}
	if o.Tiered && o.HotThreshold == 0 {
		o.HotThreshold = DefaultHotThreshold
	}
	if o.SamplePeriod == 0 {
		o.SamplePeriod = 2000
	}
	if o.InterruptCost == 0 {
		o.InterruptCost = sampler.DefaultInterruptCost
	}
	if o.SampleASLRSeed == 0 {
		o.SampleASLRSeed = 101
	}
	if o.InstrASLRSeed == 0 {
		o.InstrASLRSeed = 202
	}
}

// Canonical returns o with every defaulted (zero) field resolved to its
// documented default. Two Options values that profile identically have
// identical Canonical forms, which is what makes them usable as part of
// a content-addressed cache key. Sequential is cleared: it selects an
// execution strategy, not a different profile, so sequential and
// parallel submissions of the same program must collide in the cache.
// FaultSpec is cleared for the same reason — injected faults change
// whether a run succeeds, never what a successful run computes (a
// corrupted or aborted run yields an error or a degraded result, and
// those are cache-ineligible). AllowDegraded survives: it changes
// execution policy, but full successes are identical either way and
// degraded results never reach the cache, so it is excluded from the
// cache key separately (see serve.jobKey).
func (o Options) Canonical() Options {
	o.fill()
	o.Sequential = false
	o.LegacyDispatch = false
	o.FaultSpec = ""
	// A threshold without tiered mode is inert; clear it so it cannot
	// split cache identity between otherwise identical submissions.
	if !o.Tiered {
		o.HotThreshold = 0
	}
	// Streaming is an observation channel, not a profile parameter: the
	// increments reconstruct exactly the profile a non-streamed run
	// produces, so streamed and plain submissions of the same program
	// must collide in the cache.
	o.StreamWindow = 0
	o.OnIncrement = nil
	return o
}

// Validation bounds. Values beyond these are either physically
// meaningless for the simulated machines or would overflow downstream
// cycle arithmetic.
const (
	maxSamplePeriod  = 1 << 32
	maxInterruptCost = 1 << 24
	maxLoopThreshold = 1 << 20
	maxMaxCycles     = uint64(1) << 62
	// Telemetry windows below this would make the interval stream rival
	// the profile itself in size (one record per window); windows above
	// the max are indistinguishable from "one interval for the run".
	minTelemetryWindow = 64
	maxTelemetryWindow = uint64(1) << 40
)

// Validate reports descriptive errors for option values that fill()
// cannot sensibly patch. Zero values are not errors — they select the
// documented defaults — but explicit out-of-range values, interrupt
// costs that would starve user execution, malformed machines, and
// cycle bounds that would overflow are all rejected. Both the CLI and
// the profiling service call this before running a pipeline.
func (o Options) Validate() error {
	if o.SamplePeriod > maxSamplePeriod {
		return fmt.Errorf("optiwise: sampling period %d exceeds maximum %d",
			o.SamplePeriod, int64(maxSamplePeriod))
	}
	if o.InterruptCost > maxInterruptCost {
		return fmt.Errorf("optiwise: interrupt cost %d exceeds maximum %d",
			o.InterruptCost, int64(maxInterruptCost))
	}
	period := o.SamplePeriod
	if period == 0 {
		period = 2000 // the documented default, see fill
	}
	if o.InterruptCost >= period {
		return fmt.Errorf("optiwise: interrupt cost %d must be smaller than the sampling period %d (the sampler would never make user progress)",
			o.InterruptCost, period)
	}
	if o.Machine.Name != "" {
		if err := o.Machine.Validate(); err != nil {
			return fmt.Errorf("optiwise: invalid machine: %w", err)
		}
	}
	if o.LoopThreshold > maxLoopThreshold {
		return fmt.Errorf("optiwise: loop threshold %d exceeds maximum %d",
			o.LoopThreshold, int64(maxLoopThreshold))
	}
	if o.MaxCycles > maxMaxCycles {
		return fmt.Errorf("optiwise: max cycles %d would overflow cycle arithmetic (maximum 2^62)",
			o.MaxCycles)
	}
	if o.TelemetryWindow != 0 {
		if o.TelemetryWindow < minTelemetryWindow {
			return fmt.Errorf("optiwise: telemetry window %d below minimum %d (the interval stream would dwarf the profile)",
				o.TelemetryWindow, minTelemetryWindow)
		}
		if o.TelemetryWindow > maxTelemetryWindow {
			return fmt.Errorf("optiwise: telemetry window %d exceeds maximum 2^40", o.TelemetryWindow)
		}
	}
	if o.StreamWindow != 0 {
		// Same bounds rationale as the telemetry window: one increment
		// per window, so tiny windows drown the run in hand-offs.
		if o.StreamWindow < minTelemetryWindow {
			return fmt.Errorf("optiwise: stream window %d below minimum %d (the increment stream would dwarf the profile)",
				o.StreamWindow, minTelemetryWindow)
		}
		if o.StreamWindow > maxTelemetryWindow {
			return fmt.Errorf("optiwise: stream window %d exceeds maximum 2^40", o.StreamWindow)
		}
	}
	if o.HotThreshold < 0 || o.HotThreshold > 1 {
		return fmt.Errorf("optiwise: hot threshold %g outside (0, 1]", o.HotThreshold)
	}
	if o.FaultSpec != "" {
		if _, err := fault.Parse(o.FaultSpec); err != nil {
			return fmt.Errorf("optiwise: invalid fault spec: %w", err)
		}
	}
	return nil
}

// Result is the combined granular-CPI profile. It aliases the analysis
// package's type, so all query methods (InstAt, FuncByName, LoopByHeader,
// HottestInst) and record slices (Insts, Funcs, Loops, Lines) are
// available.
type Result = core.Profile

// Profile runs the complete OptiWISE pipeline on prog: a sampling run on
// the simulated machine, an instrumentation run under the DBI engine, and
// the combining analysis.
func Profile(prog *Program, opts Options) (*Result, error) {
	return ProfileContext(context.Background(), prog, opts)
}

// ProfileContext is Profile with cooperative cancellation: ctx is
// threaded through both profiled executions down to cycle-granularity
// checks in the pipeline-simulator and DBI run loops, so a canceled or
// expired context aborts a profiling run within a bounded number of
// simulated cycles. The returned error wraps ctx.Err().
//
// Unless Options.Sequential is set, the sampling and instrumentation
// passes run concurrently: they are independent executions of the same
// binary (§IV), so overlapping them hides the cheaper pass entirely.
// The first pass to fail cancels its sibling (errgroup semantics), and
// the combined Result is byte-identical to the sequential path — each
// pass is deterministic in isolation and the combining analysis sees
// exactly the same two profiles.
//
// With Options.AllowDegraded the failure semantics soften: a failing
// pass no longer cancels its sibling, and when exactly one pass fails
// for its own reasons (not the caller's cancellation) the survivor is
// analyzed alone into a Result with Degraded set (DESIGN.md §8). A
// panic inside either pass is recovered into a *PanicError instead of
// crashing the process, so long-lived callers (the profiling service)
// degrade or fail the one job rather than dying.
func ProfileContext(ctx context.Context, prog *Program, opts Options) (*Result, error) {
	opts.fill()
	if opts.FaultSpec != "" {
		if err := fault.EnsureSpec(opts.FaultSpec); err != nil {
			return nil, err
		}
	}
	span := obs.StartCtx(ctx, "profile").SetAttr("module", prog.Module())
	defer span.End()
	// Downstream stages (analyze, degraded analyze) parent under this
	// span via the context rather than the tracer's ambient stack, so
	// concurrent jobs in one process keep their lineages separate.
	ctx = obs.ContextWithSpan(ctx, span)
	sp, ep, sampleErr, instrErr := runPasses(ctx, prog, opts, span)
	if sampleErr == nil && instrErr == nil {
		return AnalyzeContext(ctx, prog, sp, ep, opts)
	}
	err := selectPassError(sampleErr, instrErr)
	if opts.AllowDegraded && ctx.Err() == nil && !isCancellation(err) {
		switch {
		case instrErr != nil && sampleErr == nil:
			span.SetAttr("degraded", "sampling-only")
			return analyzeDegraded(ctx, prog, sp, nil, opts, instrErr)
		case sampleErr != nil && instrErr == nil:
			span.SetAttr("degraded", "counts-only")
			return analyzeDegraded(ctx, prog, nil, ep, opts, sampleErr)
		}
		// Both passes failed on their own: nothing survives to degrade to.
	}
	return nil, err
}

// PanicError is a panic recovered from a profiling pass, converted
// into an ordinary error carrying the panic value and the stack at
// recovery time. The serve layer classifies it as transient (a panic
// is as likely a corrupted in-memory state as a deterministic bug, and
// the retry budget caps the damage either way).
type PanicError struct {
	// Op names the pass that panicked ("sampling" or "instrumentation").
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("optiwise: %s pass panicked: %v", e.Op, e.Value)
}

// selectPassError picks the error to surface when at least one pass
// failed, mirroring the sequential order deterministically: the
// sampling pass's error wins. When only the instrumentation pass
// failed for its own reasons, the sampling pass may still have been
// torn down by the shared cancel — prefer the root cause.
func selectPassError(sampleErr, instrErr error) error {
	if sampleErr != nil && (instrErr == nil || !isCancellation(sampleErr) || isCancellation(instrErr)) {
		return sampleErr
	}
	return instrErr
}

// analyzeDegraded combines the surviving pass into a flagged partial
// Result; exactly one of sp/ep is non-nil. failure is the failed
// pass's error, recorded in the Result for reports and job status.
func analyzeDegraded(ctx context.Context, prog *Program, sp *SampleProfile, ep *EdgeProfile, opts Options, failure error) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("optiwise: analyze canceled: %w", err)
	}
	span := obs.StartCtx(ctx, "analyze_degraded").SetAttr("module", prog.Module())
	defer span.End()
	copts := coreOptions(opts)
	ctx = obs.ContextWithSpan(ctx, span)
	if sp != nil {
		span.SetAttr("failed_pass", core.PassInstrumentation)
		res, err := core.CombineSampleOnlyContext(ctx, prog.prog, sp, copts, failure.Error())
		if err == nil {
			emitIntervalCounters(span, res)
		}
		return res, err
	}
	span.SetAttr("failed_pass", core.PassSampling)
	return core.CombineCountsOnlyContext(ctx, prog.prog, ep, copts, failure.Error())
}

// runPasses executes the sampling and instrumentation passes, either
// back to back (Options.Sequential) or overlapped on two goroutines,
// and returns each pass's profile and error separately so the caller
// can implement degraded mode. Pass panics are recovered into
// *PanicError values.
func runPasses(ctx context.Context, prog *Program, opts Options, span *obs.Span) (*SampleProfile, *EdgeProfile, error, error) {
	if opts.Tiered {
		return runTieredPasses(ctx, prog, opts, span)
	}
	if opts.Sequential {
		sp, _, sampleErr := guardedSamplePass(ctx, prog, opts, span, nil)
		if sampleErr != nil && !opts.AllowDegraded {
			return nil, nil, sampleErr, nil
		}
		ep, instrErr := guardedInstrumentPass(ctx, prog, opts, span, nil, nil)
		return sp, ep, sampleErr, instrErr
	}

	// Errgroup-style fan-out: a derived context cancels the sibling pass
	// as soon as either fails, so a doomed profiling run never simulates
	// longer than its slowest surviving pass needs to notice. Under
	// AllowDegraded a failing pass must NOT tear down its sibling — the
	// survivor is the degraded result.
	passCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	onErr := cancel
	if opts.AllowDegraded {
		onErr = func() {}
	}
	var (
		wg        sync.WaitGroup
		sp        *SampleProfile
		ep        *EdgeProfile
		sampleErr error
		instrErr  error
		sampleDur time.Duration
		instrDur  time.Duration
	)
	start := time.Now()
	wg.Add(2)
	go func() {
		defer wg.Done()
		sp, _, sampleErr = guardedSamplePass(passCtx, prog, opts, span, onErr)
		sampleDur = time.Since(start)
	}()
	go func() {
		defer wg.Done()
		ep, instrErr = guardedInstrumentPass(passCtx, prog, opts, span, nil, onErr)
		instrDur = time.Since(start)
	}()
	wg.Wait()
	wall := time.Since(start)
	recordPassOverlap(span, sampleDur, instrDur, wall)
	return sp, ep, sampleErr, instrErr
}

// runTieredPasses is the sequential-tiered schedule (DESIGN.md §12).
// The PR 3 pass overlap cannot apply: the selective DBI pass consumes
// the sampling pass's cycle attribution, so the stages are ordered —
// sample, derive the hotness selection (a dedicated fault seam), then
// instrument only the selection. Degraded mode inverts per stage: if
// sampling fails there is no selection to derive, so the
// instrumentation pass falls back to full coverage (the counts-only
// view must not silently lose cold counts too); if selection or
// instrumentation fails, the sampling profile alone degrades to the
// usual sampling-only view.
func runTieredPasses(ctx context.Context, prog *Program, opts Options, span *obs.Span) (*SampleProfile, *EdgeProfile, error, error) {
	sp, _, sampleErr := guardedSamplePass(ctx, prog, opts, span, nil)
	if sampleErr != nil {
		if !opts.AllowDegraded {
			return nil, nil, sampleErr, nil
		}
		// Full instrumentation: without a sampling profile the degraded
		// counts-only result must carry exact counts everywhere.
		ep, instrErr := guardedInstrumentPass(ctx, prog, opts, span, nil, nil)
		return sp, ep, sampleErr, instrErr
	}
	if err := fault.Err(fault.SiteTieredSelect); err != nil {
		return sp, nil, nil, fmt.Errorf("optiwise: tiered selection: %w", err)
	}
	sel := core.DeriveSelection(prog.prog, sp, opts.HotThreshold)
	span.SetAttr("tiered", true).SetAttr("hot_ranges", len(sel.Ranges()))
	ep, instrErr := guardedInstrumentPass(ctx, prog, opts, span, sel, nil)
	return sp, ep, nil, instrErr
}

// guardedSamplePass runs the sampling pass under a span and a panic
// guard. A recovered panic becomes a *PanicError; onErr (when non-nil)
// fires on any failure, letting the concurrent pipeline cancel the
// sibling pass. The span parenting is explicit (StartChild) because
// with both passes open concurrently the tracer's ambient stack would
// nest one sibling under the other.
func guardedSamplePass(ctx context.Context, prog *Program, opts Options, span *obs.Span, onErr func()) (sp *SampleProfile, st ooo.Stats, err error) {
	ps := span.StartChild("sample").
		SetAttr("module", prog.Module()).
		SetAttr("period", opts.SamplePeriod)
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Op: core.PassSampling, Value: v, Stack: debug.Stack()}
		}
		ps.End()
		if err != nil && onErr != nil {
			onErr()
		}
	}()
	return samplePass(ctx, prog, opts)
}

// guardedInstrumentPass is guardedSamplePass for the instrumentation
// pass. sel, when non-nil, restricts instrumentation to the tiered
// hotness selection.
func guardedInstrumentPass(ctx context.Context, prog *Program, opts Options, span *obs.Span, sel *dbi.Selection, onErr func()) (ep *EdgeProfile, err error) {
	ps := span.StartChild("instrument").SetAttr("module", prog.Module())
	if sel != nil {
		ps.SetAttr("tiered", true)
	}
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Op: core.PassInstrumentation, Value: v, Stack: debug.Stack()}
		}
		ps.End()
		if err != nil && onErr != nil {
			onErr()
		}
	}()
	return instrumentPass(ctx, prog, opts, sel)
}

// coreOptions maps the public profiling options onto the analysis
// layer's options. opts must be filled so the recorded machine name is
// the resolved one.
func coreOptions(o Options) core.Options {
	return core.Options{
		Attribution:   o.Attribution,
		Unweighted:    o.Unweighted,
		LoopThreshold: o.LoopThreshold,
		Machine:       o.Machine.Name,
		Tiered:        o.Tiered,
	}
}

// isCancellation reports whether err stems from context cancellation or
// expiry rather than a pass's own failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// recordPassOverlap feeds the pass-overlap observability: which share of
// the shorter pass was hidden under the longer one (100% = the cheaper
// run was free, 0% = the passes serialized).
func recordPassOverlap(span *obs.Span, sampleDur, instrDur, wall time.Duration) {
	shorter := sampleDur
	if instrDur < shorter {
		shorter = instrDur
	}
	overlap := sampleDur + instrDur - wall
	if overlap < 0 {
		overlap = 0
	}
	if overlap > shorter {
		overlap = shorter
	}
	pct := 100.0
	if shorter > 0 {
		pct = 100 * float64(overlap) / float64(shorter)
	}
	span.SetAttr("pass_overlap_pct", pct)
	obs.Counter(obs.MProfileParallelRuns).Inc()
	obs.Histogram(obs.MProfileOverlapPct).Observe(uint64(pct + 0.5))
}

// SampleProfile is the output of the sampling run (the perf.data
// equivalent).
type SampleProfile = sampler.Profile

// EdgeProfile is the output of the instrumentation run (the DynamoRIO
// client's output equivalent).
type EdgeProfile = dbi.Profile

// Increment is one windowed profile increment from a streaming run
// (Options.StreamWindow / Options.OnIncrement).
type Increment = stream.Increment

// StreamCombiner folds a streaming run's increments into cumulative
// pass profiles; Snapshot gives per-window summaries mid-run, Result a
// full granular CPI profile of everything streamed so far. Safe to feed
// from Options.OnIncrement with concurrent passes.
type StreamCombiner = stream.Combiner

// StreamSnapshot is a point-in-time view of a streaming run.
type StreamSnapshot = stream.Snapshot

// NewStreamCombiner returns a combiner for a streaming run of prog
// configured by opts. The combiner uses the same analysis options a
// one-shot Profile call would, so its Result after both passes finish
// is byte-identical to the one-shot Result.
func NewStreamCombiner(prog *Program, opts Options) *StreamCombiner {
	opts.fill()
	return stream.NewCombiner(prog.prog, coreOptions(opts))
}

// RestoreStreamCombiner rebuilds a combiner from a Checkpoint taken by
// an earlier combiner for the same program and options. Re-feeding the
// restored combiner the run's deterministic increment stream from the
// start is a no-op up to the checkpointed window and resumes cleanly
// past it, so a crashed streaming run resumes byte-identical to an
// uninterrupted one (DESIGN.md §13).
func RestoreStreamCombiner(prog *Program, opts Options, checkpoint []byte) (*StreamCombiner, error) {
	opts.fill()
	return stream.RestoreCombiner(prog.prog, coreOptions(opts), checkpoint)
}

// SampleOnly performs just the sampling run (optiwise sample).
func SampleOnly(prog *Program, opts Options) (*SampleProfile, ooo.Stats, error) {
	return SampleOnlyContext(context.Background(), prog, opts)
}

// SampleOnlyContext is SampleOnly with cooperative cancellation (see
// ProfileContext).
func SampleOnlyContext(ctx context.Context, prog *Program, opts Options) (*SampleProfile, ooo.Stats, error) {
	opts.fill()
	span := obs.StartCtx(ctx, "sample").
		SetAttr("module", prog.Module()).
		SetAttr("period", opts.SamplePeriod)
	defer span.End()
	return samplePass(ctx, prog, opts)
}

// samplePass is the sampling pass body, span-free so the concurrent
// pipeline can wrap it in an explicitly parented span (the ambient
// span stack cannot attribute concurrent siblings). opts must be
// filled.
func samplePass(ctx context.Context, prog *Program, opts Options) (*SampleProfile, ooo.Stats, error) {
	sopts := sampler.Options{
		Period:         opts.SamplePeriod,
		InterruptCost:  opts.InterruptCost,
		Precise:        opts.Precise,
		Jitter:         opts.SampleJitter,
		ASLRSeed:       opts.SampleASLRSeed,
		RandSeed:       opts.RandSeed,
		MaxCycles:      opts.MaxCycles,
		IntervalCycles: opts.TelemetryWindow,
	}
	if opts.StreamWindow > 0 && opts.OnIncrement != nil {
		emit := opts.OnIncrement
		seq := 0 // emission is synchronous on this pass's goroutine
		sopts.WindowCycles = opts.StreamWindow
		sopts.OnWindow = func(inc *sampler.Profile, final bool) {
			emit(stream.Increment{Pass: core.PassSampling, Seq: seq, Final: final, Sample: inc})
			seq++
		}
	}
	return sampler.RunContext(ctx, opts.Machine, prog.prog, sopts)
}

// InstrumentOnly performs just the instrumentation run (optiwise
// instrument).
func InstrumentOnly(prog *Program, opts Options) (*EdgeProfile, error) {
	return InstrumentOnlyContext(context.Background(), prog, opts)
}

// InstrumentOnlyContext is InstrumentOnly with cooperative cancellation
// (see ProfileContext).
func InstrumentOnlyContext(ctx context.Context, prog *Program, opts Options) (*EdgeProfile, error) {
	opts.fill()
	span := obs.StartCtx(ctx, "instrument").SetAttr("module", prog.Module())
	defer span.End()
	return instrumentPass(ctx, prog, opts, nil)
}

// TieredInstrumentOnly performs the selective instrumentation run of a
// tiered profile (DESIGN.md §12): the hotness selection is derived from
// the sampling profile sp at opts.HotThreshold (Options.Canonical's
// default when zero), and only the selected block heads are
// instrumented; everything else executes in uninstrumented cold legs.
// The resulting EdgeProfile carries Tiered, HotRanges, and
// ColdInstructions, and its Overhead() reflects the reduced modelled
// cost — `owbench tiered` builds the overhead/accuracy frontier from
// this seam. Analyze accepts the pair (sp, tiered ep) and extrapolates
// cold counts exactly as Profile with Options.Tiered would.
func TieredInstrumentOnly(prog *Program, sp *SampleProfile, opts Options) (*EdgeProfile, error) {
	return TieredInstrumentOnlyContext(context.Background(), prog, sp, opts)
}

// TieredInstrumentOnlyContext is TieredInstrumentOnly with cooperative
// cancellation (see ProfileContext).
func TieredInstrumentOnlyContext(ctx context.Context, prog *Program, sp *SampleProfile, opts Options) (*EdgeProfile, error) {
	opts.Tiered = true
	opts.fill()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	sel := core.DeriveSelection(prog.prog, sp, opts.HotThreshold)
	span := obs.StartCtx(ctx, "instrument").
		SetAttr("module", prog.Module()).
		SetAttr("tiered", true).
		SetAttr("hot_ranges", len(sel.Ranges()))
	defer span.End()
	return instrumentPass(ctx, prog, opts, sel)
}

// instrumentPass is the instrumentation pass body, span-free for the
// same reason as samplePass. opts must be filled. sel, when non-nil,
// is the tiered hotness selection.
func instrumentPass(ctx context.Context, prog *Program, opts Options, sel *dbi.Selection) (*EdgeProfile, error) {
	dopts := dbi.Options{
		StackProfiling:  !opts.DisableStackProfiling,
		ASLRSeed:        opts.InstrASLRSeed,
		RandSeed:        opts.RandSeed,
		MaxInstructions: opts.MaxCycles,
		Select:          sel,
		LegacyDispatch:  opts.LegacyDispatch,
	}
	if opts.StreamWindow > 0 && opts.OnIncrement != nil {
		emit := opts.OnIncrement
		seq := 0 // emission is synchronous on this pass's goroutine
		dopts.WindowInstructions = opts.StreamWindow
		dopts.OnWindow = func(inc *dbi.Profile, final bool) {
			emit(stream.Increment{Pass: core.PassInstrumentation, Seq: seq, Final: final, Edge: inc})
			seq++
		}
	}
	return dbi.RunContext(ctx, prog.prog, dopts)
}

// Analyze combines previously collected profiles (optiwise analyze).
func Analyze(prog *Program, sp *SampleProfile, ep *EdgeProfile, opts Options) (*Result, error) {
	return AnalyzeContext(context.Background(), prog, sp, ep, opts)
}

// AnalyzeContext is Analyze with a single up-front cancellation check.
// The combining analysis is orders of magnitude cheaper than the two
// profiled executions, so it is not internally interruptible; a context
// that is already done still fails fast here.
func AnalyzeContext(ctx context.Context, prog *Program, sp *SampleProfile, ep *EdgeProfile, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("optiwise: analyze canceled: %w", err)
	}
	span := obs.StartCtx(ctx, "analyze").SetAttr("module", prog.Module())
	defer span.End()
	res, err := core.CombineContext(obs.ContextWithSpan(ctx, span), prog.prog, sp, ep, coreOptions(opts))
	if err == nil {
		emitIntervalCounters(span, res)
	}
	return res, err
}

// emitIntervalCounters exports the interval-telemetry stream (when the
// run collected one) as Chrome-trace counter tracks on the span's
// tracer, so a job trace opened in Perfetto shows the simulated core's
// phase behaviour as stacked counter rows alongside the pipeline spans.
// The counter timeline is simulated time — one microsecond per thousand
// simulated cycles — on its own process track, so it never perturbs the
// wall-clock span timeline. With telemetry disabled (no intervals) this
// is a nil check and the trace stays byte-identical to PR 1.
func emitIntervalCounters(span *obs.Span, res *Result) {
	t := span.Tracer()
	if t == nil || res == nil || len(res.Intervals) == 0 {
		return
	}
	for _, iv := range res.Intervals {
		ts := float64(iv.Start) / 1e3
		t.AddCounter("sim ipc", ts, map[string]float64{"ipc": iv.IPC})
		t.AddCounter("sim rob_occupancy", ts, map[string]float64{"slots": iv.ROBOccupancy})
		t.AddCounter("sim mispredict_rate", ts, map[string]float64{"rate": iv.MispredictRate})
		if len(iv.Cache) > 0 {
			vals := make(map[string]float64, len(iv.Cache))
			for _, lv := range iv.Cache {
				vals[lv.Level] = lv.Rate
			}
			t.AddCounter("sim cache_miss_rate", ts, vals)
		}
		t.AddCounter("sim stalls", ts, map[string]float64{
			"commit":       float64(iv.Stalls.Commit),
			"frontend":     float64(iv.Stalls.Frontend),
			"memory":       float64(iv.Stalls.Memory),
			"store_buffer": float64(iv.Stalls.StoreBuffer),
			"execute":      float64(iv.Stalls.Execute),
			"other":        float64(iv.Stalls.Other),
		})
	}
}

// WriteReport renders the full human-readable report (summary, function
// table, loop table, hottest lines, annotated hottest function).
func WriteReport(w io.Writer, r *Result) error { return report.WriteAll(w, r) }

// WriteYAML serializes the combined profile as YAML — the third
// machine-readable export beside JSON and CSV. Degraded results carry
// the degraded flag trio plus a human-readable banner field.
func WriteYAML(w io.Writer, r *Result) error { return report.WriteYAML(w, r) }

// WriteFunctionTable renders only the per-function table.
func WriteFunctionTable(w io.Writer, r *Result) error { return report.WriteFunctionTable(w, r) }

// WriteLoopTable renders only the merged-loop table.
func WriteLoopTable(w io.Writer, r *Result) error { return report.WriteLoopTable(w, r) }

// WriteAnnotated renders the annotated disassembly of one function
// (figures 1 and 10 in the paper).
func WriteAnnotated(w io.Writer, r *Result, fn string) error {
	return report.WriteAnnotatedFunc(w, r, fn)
}

// WriteCallGraph renders a gprof-style caller/callee table with dynamic
// call counts and inclusive times.
func WriteCallGraph(w io.Writer, r *Result) error { return report.WriteCallGraph(w, r) }

// WriteCFGDot renders one function's reconstructed CFG in Graphviz dot
// format with execution counts on blocks and edges. Sampling-only
// degraded results carry no CFG (the instrumentation pass that would
// have built it failed), so the request is refused with a descriptive
// error rather than an empty graph.
func WriteCFGDot(w io.Writer, r *Result, fn string) error {
	if r.Graph == nil || (r.Degraded && len(r.Graph.Blocks) == 0) {
		return fmt.Errorf("optiwise: no CFG available: %s pass failed (degraded result)", r.FailedPass)
	}
	return r.Graph.WriteDot(w, r.Prog, fn)
}

// WriteEventTable renders per-function cache-miss and branch-mispredict
// rates from the multi-event samples.
func WriteEventTable(w io.Writer, r *Result) error { return report.WriteEventTable(w, r) }

// WriteBlockTable renders the hottest basic blocks.
func WriteBlockTable(w io.Writer, r *Result, max int) error {
	return report.WriteBlockTable(w, r, max)
}

// WriteAnnotatedLoop renders the annotated disassembly of one merged
// loop's body blocks.
func WriteAnnotatedLoop(w io.Writer, r *Result, loopID int) error {
	return report.WriteAnnotatedLoop(w, r, loopID)
}

// WriteInstCSV / WriteLoopCSV export machine-readable records.
func WriteInstCSV(w io.Writer, r *Result) error { return report.WriteInstCSV(w, r) }

// WriteLoopCSV exports loop records as CSV.
func WriteLoopCSV(w io.Writer, r *Result) error { return report.WriteLoopCSV(w, r) }

// Overhead describes the figure 7 measurement for one program: how much
// slower each OptiWISE stage is than native execution.
type Overhead struct {
	Module string
	// BaselineCycles is the native run time on the simulated machine.
	BaselineCycles uint64
	// SamplingRatio is sampled-run time over baseline (paper: ~1.01x).
	SamplingRatio float64
	// InstrumentationRatio is the DBI run's modelled slowdown
	// (paper: geomean 7.1x, worst 56x).
	InstrumentationRatio float64
	// TotalRatio is the combined two-run slowdown (paper: geomean 8.1x,
	// worst 57x).
	TotalRatio float64
	// AnalysisSeconds is the wall-clock time of the combining analysis.
	AnalysisSeconds float64
	// SampleProfileBytes / EdgeProfileBytes are the serialized profile
	// sizes (§V-A: sampling data grows with run length, edge data with
	// CFG size).
	SampleProfileBytes int
	EdgeProfileBytes   int
}

// MeasureOverhead runs the full figure 7 measurement for one program.
func MeasureOverhead(prog *Program, opts Options) (Overhead, error) {
	opts.fill()
	span := obs.Start("measure_overhead").SetAttr("module", prog.Module())
	defer span.End()
	base, err := prog.Run(opts.Machine)
	if err != nil {
		return Overhead{}, err
	}
	sp, sstats, err := SampleOnly(prog, opts)
	if err != nil {
		return Overhead{}, err
	}
	ep, err := InstrumentOnly(prog, opts)
	if err != nil {
		return Overhead{}, err
	}
	elapsed, err := timeAnalysis(prog, sp, ep, opts)
	if err != nil {
		return Overhead{}, err
	}
	ov := Overhead{
		Module:          prog.Module(),
		BaselineCycles:  base.Cycles,
		SamplingRatio:   float64(sstats.Cycles) / float64(base.Cycles),
		AnalysisSeconds: elapsed,
	}
	ov.InstrumentationRatio = ep.Overhead()
	ov.TotalRatio = ov.SamplingRatio + ov.InstrumentationRatio
	var cw countingWriter
	if err := sp.Write(&cw); err != nil {
		return Overhead{}, err
	}
	ov.SampleProfileBytes = cw.n
	cw.n = 0
	if err := ep.Write(&cw); err != nil {
		return Overhead{}, err
	}
	ov.EdgeProfileBytes = cw.n
	return ov, nil
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

func timeAnalysis(prog *Program, sp *SampleProfile, ep *EdgeProfile, opts Options) (float64, error) {
	sw := obs.StartTimer()
	if _, err := Analyze(prog, sp, ep, opts); err != nil {
		return 0, err
	}
	return sw.Seconds(), nil
}
