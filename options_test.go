package optiwise

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestMachineByName(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"", "xeon-w2195"},
		{"xeon", "xeon-w2195"},
		{"xeon-w2195", "xeon-w2195"},
		{"n1", "neoverse-n1"},
		{"neoverse-n1", "neoverse-n1"},
	} {
		m, err := MachineByName(tc.in)
		if err != nil {
			t.Errorf("MachineByName(%q): %v", tc.in, err)
			continue
		}
		if m.Name != tc.want {
			t.Errorf("MachineByName(%q).Name = %q, want %q", tc.in, m.Name, tc.want)
		}
	}
	if _, err := MachineByName("cray-1"); err == nil ||
		!strings.Contains(err.Error(), "cray-1") {
		t.Errorf("MachineByName(cray-1) err = %v, want a descriptive error", err)
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr string // empty = valid
	}{
		{"zero value", Options{}, ""},
		{"typical", Options{SamplePeriod: 500, LoopThreshold: 5}, ""},
		{"period too large", Options{SamplePeriod: 1 << 40}, "sampling period"},
		{"interrupt cost too large", Options{InterruptCost: 1 << 30}, "interrupt cost"},
		{"cost eats period", Options{SamplePeriod: 100, InterruptCost: 100}, "smaller than the sampling period"},
		{"cost eats default period", Options{InterruptCost: 2000}, "smaller than the sampling period"},
		{"threshold too large", Options{LoopThreshold: 1 << 30}, "loop threshold"},
		{"max cycles overflow", Options{MaxCycles: 1 << 63}, "overflow"},
		{"bad machine", Options{Machine: Machine{Name: "broken"}}, "invalid machine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error mentioning %q", err, tc.wantErr)
			}
		})
	}
}

func TestOptionsCanonical(t *testing.T) {
	a := Options{}.Canonical()
	b := Options{SamplePeriod: 2000, Machine: XeonW2195()}.Canonical()
	if a.SamplePeriod != b.SamplePeriod || a.InterruptCost != b.InterruptCost ||
		a.Machine.Name != b.Machine.Name ||
		a.SampleASLRSeed != b.SampleASLRSeed || a.InstrASLRSeed != b.InstrASLRSeed {
		t.Errorf("canonical forms differ:\n a=%+v\n b=%+v", a, b)
	}
	if a.Machine.Name != "xeon-w2195" || a.SamplePeriod != 2000 {
		t.Errorf("Canonical did not resolve defaults: %+v", a)
	}
	if a.InterruptCost == 0 || a.SampleASLRSeed == 0 || a.InstrASLRSeed == 0 {
		t.Errorf("Canonical left zero defaults: %+v", a)
	}
}

// TestProfileContextCancel checks the cooperative cancellation path end
// to end: a context canceled before (and during) a run aborts the
// pipeline with an error that wraps context.Canceled.
func TestProfileContextCancel(t *testing.T) {
	prog, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ProfileContext(ctx, prog, Options{SamplePeriod: 500}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ProfileContext on dead context = %v, want context.Canceled", err)
	}
	if _, _, err := SampleOnlyContext(ctx, prog, Options{SamplePeriod: 500}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SampleOnlyContext on dead context = %v, want context.Canceled", err)
	}
	if _, err := InstrumentOnlyContext(ctx, prog, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("InstrumentOnlyContext on dead context = %v, want context.Canceled", err)
	}
}

// TestMaxCyclesBoundsRun checks that Options.MaxCycles stops a
// non-terminating program instead of hanging the pipeline.
func TestMaxCyclesBoundsRun(t *testing.T) {
	prog, err := Assemble("spin", `
.module spin
.text
.func main
main:
spin:
    j spin
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Profile(prog, Options{SamplePeriod: 500, MaxCycles: 20000}); err == nil {
		t.Fatal("Profile of a non-terminating program returned nil error under MaxCycles")
	}
}
