package optiwise

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"optiwise/internal/obs"
)

// TestProfileEmitsSpans runs the full pipeline with a tracer installed
// and checks the span hierarchy the ISSUE specifies: profile →
// sample/instrument/analyze, and analyze → combine sub-phases
// (cfg_build, dominators, loop_merge, attribution, aggregation).
func TestProfileEmitsSpans(t *testing.T) {
	tr := obs.NewTracer()
	prev := obs.SetTracer(tr)
	defer obs.SetTracer(prev)

	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Profile(p, Options{SamplePeriod: 500}); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	byName := map[string][]obs.SpanData{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, want := range []string{
		"profile", "sample", "instrument", "analyze", "combine",
		"cfg_build", "attribution", "aggregation", "funcs", "loop_merge",
		"lines", "blocks", "dominators",
	} {
		if len(byName[want]) == 0 {
			t.Errorf("missing span %q (have: %v)", want, names(spans))
		}
	}
	// Nesting: sample/instrument/analyze under profile; combine under
	// analyze; sub-phases under combine or aggregation.
	profileID := byName["profile"][0].ID
	for _, stage := range []string{"sample", "instrument", "analyze"} {
		if got := byName[stage][0].Parent; got != profileID {
			t.Errorf("span %q parent = %d, want profile (%d)", stage, got, profileID)
		}
	}
	combine := byName["combine"][0]
	if combine.Parent != byName["analyze"][0].ID {
		t.Errorf("combine parent = %d, want analyze (%d)",
			combine.Parent, byName["analyze"][0].ID)
	}
	if got := byName["cfg_build"][0].Parent; got != combine.ID {
		t.Errorf("cfg_build parent = %d, want combine (%d)", got, combine.ID)
	}
	if got := byName["loop_merge"][0].Parent; got != byName["aggregation"][0].ID {
		t.Errorf("loop_merge parent = %d, want aggregation (%d)",
			got, byName["aggregation"][0].ID)
	}

	// The Chrome trace export of a real pipeline run must be valid JSON
	// with the required event fields (what Perfetto checks on load).
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != len(spans) {
		t.Errorf("trace has %d events, want %d", len(parsed.TraceEvents), len(spans))
	}
}

func names(spans []obs.SpanData) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestProfileFeedsMetrics runs the pipeline with a registry installed
// and checks the DBI, sampler, simulator, and cache counters the ISSUE
// names, plus the Prometheus export of a real run.
func TestProfileFeedsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetRegistry(reg)
	defer obs.SetRegistry(prev)

	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(p, Options{SamplePeriod: 500})
	if err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter(obs.MSamplesTaken).Value(); got != prof.TotalSamples {
		t.Errorf("samples counter = %d, profile says %d", got, prof.TotalSamples)
	}
	if reg.Counter(obs.MSimCycles).Value() == 0 {
		t.Error("simulated-cycles counter not fed")
	}
	if reg.Counter(obs.MDBIBlocksFound).Value() == 0 {
		t.Error("dbi blocks-discovered counter not fed")
	}
	if reg.Gauge(obs.MDBICodeCacheSize).Value() == 0 {
		t.Error("dbi code-cache gauge not fed")
	}
	if reg.Histogram(obs.MSampleWeight).Count() != prof.TotalSamples {
		t.Error("sample-weight histogram not fed per sample")
	}
	if reg.Counter(obs.CacheHits("L1")).Value() == 0 {
		t.Error("l1 hit counter not fed")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE optiwise_sim_cycles_total counter",
		"# TYPE optiwise_dbi_blocks_discovered_total counter",
		"# TYPE optiwise_cache_l1_hits_total counter",
		"# TYPE optiwise_sampler_sample_weight_cycles histogram",
		"optiwise_sampler_sample_weight_cycles_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestPipelineDisabledByDefault documents the zero-cost contract: with
// no instruments installed, profiling must not record anything and must
// not panic anywhere along the instrumented paths.
func TestPipelineDisabledByDefault(t *testing.T) {
	obs.SetTracer(nil)
	obs.SetRegistry(nil)
	p, err := Assemble("quick", quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Profile(p, Options{SamplePeriod: 500}); err != nil {
		t.Fatal(err)
	}
}
